"""The FaST-Scheduler control loop (paper §3.4).

Every ``interval`` seconds, for each function:

1. run the predictive autoscaler tick (observe arrivals, pre-warm/retire
   ``WARM_IDLE`` pods) and read its predicted request load ``R_j`` — the
   reactive gateway signal blended with the forecast (× a small
   SLO-headroom factor).  The reactive configuration is the *degenerate*
   predictive controller (no forecasters), so there is exactly one path;
2. compute the processing gap ``ΔRPS_j = R_j − Σ T_{j,i}`` over running and
   starting pods (throughputs from the profile database); WARM_IDLE pods
   contribute no capacity;
3. run the Heuristic Scaling Algorithm;
4. apply the plan: a scale-up first *promotes* a warm pod if one is parked
   (no cold start, no new rectangle); otherwise it is placed by the Maximal
   Rectangles Algorithm (w = quota·100, h = SM partition) subject to node
   GPU-memory feasibility, then handed to the FaSTPod controller;
   scale-downs drain their pods and release their rectangles.

A short scale-down cooldown after any scale-up prevents flapping on noisy
predictions (the paper leaves this operational detail unspecified).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.k8s.fastpod import FaSTPodController
from repro.profiler.database import ProfileDatabase
from repro.scheduler.autoscale import (
    HeuristicScaler,
    RunningPod,
    ScaleDownAction,
    ScaleUpAction,
)
from repro.scheduler.mra import MaximalRectanglesScheduler, NoFitError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.autoscaler.controller import PredictiveAutoscaler
    from repro.k8s.cluster import Cluster
    from repro.faas.gateway import Gateway
    from repro.sim.engine import Engine


@dataclasses.dataclass(slots=True)
class SchedulerEvent:
    """One applied scaling decision (for experiment timelines)."""

    time: float
    function: str
    action: str  # "up" | "promote" | "swapin" | "down" | "nofit"
    sm_partition: float
    quota: float
    node: str | None


class FaSTScheduler:
    """Auto-scaling + node-selection control loop."""

    def __init__(
        self,
        engine: "Engine",
        cluster: "Cluster",
        gateway: "Gateway",
        database: ProfileDatabase,
        controllers: _t.Mapping[str, FaSTPodController],
        interval: float = 2.0,
        headroom: float = 1.10,
        scale_down_cooldown: float = 6.0,
        restructure_threshold: int = 24,
        min_replicas: int = 1,
        latency_headroom: float = 0.6,
        down_hysteresis: float = 0.10,
        max_down_per_tick: int = 1,
        placement_policy: str = "binpack",
        predictive: "PredictiveAutoscaler | None" = None,
        min_replicas_by_function: _t.Mapping[str, int] | None = None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if headroom < 1.0:
            raise ValueError("headroom must be >= 1 (it is an SLO safety factor)")
        if min_replicas < 0:
            raise ValueError("min_replicas must be >= 0")
        self.engine = engine
        self.cluster = cluster
        self.gateway = gateway
        self.database = database
        self.controllers = dict(controllers)
        self.interval = interval
        self.headroom = headroom
        self.scale_down_cooldown = scale_down_cooldown
        self.min_replicas = min_replicas
        # Per-function reactive floors (the declarative Scenario min_replicas);
        # they override the global default, and the predictive policy may still
        # park below them during keep-alive scale-to-zero (that is its point).
        self.min_replicas_by_function = dict(min_replicas_by_function or {})
        self.down_hysteresis = down_hysteresis
        self.max_down_per_tick = max_down_per_tick
        slo_map = {name: c.function.slo_ms for name, c in self.controllers.items()}
        # Profile latencies are V100-calibrated; on a cluster containing
        # slower GPU types a pod's GPU-resident time grows by 1/factor, so
        # shrink the SLO-feasibility budget by the slowest node's factor —
        # a config passing this bound meets its latency budget on any node.
        min_factor = min(cluster.speed_factors().values())
        effective_headroom = latency_headroom * min(1.0, min_factor)
        self.scaler = HeuristicScaler(
            database, slo_ms=slo_map, latency_headroom=effective_headroom
        )
        self.placement = MaximalRectanglesScheduler(
            [node.name for node in cluster.nodes],
            restructure_threshold=restructure_threshold,
            policy=placement_policy,
            node_factors=cluster.speed_factors(),
        )
        if predictive is None:
            # The reactive configuration is the *degenerate* predictive
            # controller (no forecasters, no policy) — one control path.
            from repro.autoscaler.controller import PredictiveAutoscaler

            predictive = PredictiveAutoscaler(engine, gateway, self.controllers)
        self.predictive = predictive
        self.predictive.bind(self)
        #: memory tier: the replica-lifecycle API (None when disabled).
        #: When set, a scale-up prefers swapping a HOST_RESIDENT pod back in
        #: over placing and cold-starting a fresh one.
        self.lifecycle = None
        #: background defragmenter (:class:`repro.migrate.Defragmenter`),
        #: wired by the platform when the scenario carries a
        #: ``cluster.defrag`` block; ticked at the end of every control tick.
        self.defragmenter = None
        self.events: list[SchedulerEvent] = []
        self.replica_series: list[tuple[float, dict[str, int]]] = []
        self._last_scale_up: dict[str, float] = {}
        self._promotions_seen: dict[str, int] = {}
        self._swaps_seen: dict[str, int] = {}
        self._handle = None
        self._running = False

    # -- lifecycle ------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            raise RuntimeError("scheduler already started")
        self._running = True
        self._handle = self.engine.schedule(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()

    # -- helpers the platform uses for manual placement too ------------------------
    def place_pod(
        self,
        controller: FaSTPodController,
        sm_partition: float,
        quota_request: float,
        quota_limit: float,
        warm: bool = False,
        used_nodes_only: bool = False,
    ):
        """MRA-place and start one replica; returns it (or raises NoFitError).

        ``warm=True`` creates a pre-warmed pod: the full rectangle is
        reserved (spatial cost explicit — promotion can never fail
        placement) and GPU memory is held, but the replica parks in
        ``WARM_IDLE`` and draws zero time quota until promoted.

        ``used_nodes_only=True`` confines placement to nodes already
        hosting pods — pre-warmed spares ride along on provisioned GPUs
        instead of powering up an idle one (their whole point is hiding
        latency, not growing the fleet).
        """
        width = quota_limit * 100.0
        probe = self._memory_probe(controller)
        if used_nodes_only:
            memory_probe = probe

            def probe(node_name: str) -> bool:  # noqa: F811 — deliberate wrap
                return bool(self.placement.gpus[node_name].placed) and memory_probe(node_name)
        choice = self.placement.select_node(width, sm_partition, allowed=probe)
        if choice is None:
            raise NoFitError(
                f"{controller.function.name}: no GPU fits "
                f"(q={quota_limit}, s={sm_partition})"
            )
        node_name, rect = choice
        node = self.cluster.node(node_name)
        replica = controller.scale_up(node, sm_partition, quota_request, quota_limit, warm=warm)
        self.placement.bind_at(replica.pod.pod_id, node_name, width, sm_partition, target=rect)
        return replica

    def _memory_probe(self, controller: FaSTPodController):
        """Feasibility filter: does the node have GPU memory for one more pod?"""
        function = controller.function
        mem = function.pod_gpu_mem_mb()

        def allowed(node_name: str) -> bool:
            node = self.cluster.node(node_name)
            extra = 0.0
            if function.use_model_sharing:
                if function.model.name not in node.model_storage.stored_models():
                    extra = function.model.memory.server_mb
            return node.device.memory.can_allocate(mem + extra)

        return allowed

    def _note(self, event: SchedulerEvent, **extra) -> None:
        """Record a scaling decision (and mirror it onto the telemetry hub)."""
        self.events.append(event)
        hub = self.engine.hub
        if hub.enabled:
            payload: dict[str, object] = {
                "sm": event.sm_partition,
                "quota": event.quota,
            }
            if event.node is not None:
                payload["node"] = event.node
            payload.update(extra)
            hub.emit(event.time, "scheduler", event.action, event.function, **payload)

    def _reject_reasons(
        self, controller: FaSTPodController, sm_partition: float, quota_limit: float
    ) -> list[dict]:
        """Why each node rejected a placement that just raised NoFitError.

        ``no-gpu-memory``: the memory-feasibility probe failed;
        ``fragmented``: enough free SM×quota area, but no single maximal
        rectangle holds the pod; ``no-capacity``: not enough free area at all.
        """
        width = quota_limit * 100.0
        probe = self._memory_probe(controller)
        rejects = []
        for node_name, gpu in self.placement.gpus.items():
            if not probe(node_name):
                reason = "no-gpu-memory"
            elif gpu.free_area() >= width * sm_partition:
                reason = "fragmented"
            else:
                reason = "no-capacity"
            rejects.append({"node": node_name, "reason": reason})
        return rejects

    # -- the control loop -----------------------------------------------------------
    def _tick(self) -> None:
        now = self.engine.now
        # Predictive layer first: observe arrivals, pre-warm/retire WARM_IDLE
        # pods, refresh per-function floors.  Reactive runs = a no-op tick.
        self.predictive.on_tick()
        delta_rps: dict[str, float] = {}
        running: dict[str, list[RunningPod]] = {}
        floors: dict[str, int] = {}
        for name, controller in self.controllers.items():
            # Gateway promotions are scale-ups the scheduler didn't make:
            # honour the cooldown so the next tick doesn't drain them back.
            promoted = self.gateway.promotions_by_function.get(name, 0)
            if promoted > self._promotions_seen.get(name, 0):
                self._promotions_seen[name] = promoted
                self._last_scale_up[name] = now
            # Gateway-driven swap-ins are scale-ups too (same cooldown rule).
            swapped = self.gateway.swap_promotions_by_function.get(name, 0)
            if swapped > self._swaps_seen.get(name, 0):
                self._swaps_seen[name] = swapped
                self._last_scale_up[name] = now
            predicted = self.predictive.predicted_rps(name) * self.headroom
            base_floor = self.min_replicas_by_function.get(name, self.min_replicas)
            floor = self.predictive.min_replicas_for(name, base_floor)
            floors[name] = floor
            pods = [
                RunningPod(
                    pod_id=pod_id,
                    sm_partition=sm,
                    quota=q_limit,
                    throughput=self._throughput_of(name, sm, q_limit, pod_id=pod_id),
                )
                for pod_id, sm, _q_req, q_limit in controller.serving_configs()
            ]
            running[name] = pods
            capacity = sum(p.throughput for p in pods)
            delta = predicted - capacity
            if delta < 0 and now - self._last_scale_up.get(name, -1e9) < self.scale_down_cooldown:
                delta = 0.0  # cooldown: suppress scale-down right after scale-up
            if delta < 0 and len(pods) <= floor:
                delta = 0.0  # keep at least the floor's warm instances
            if delta < 0 and -delta <= self.down_hysteresis * max(capacity, 1e-9):
                delta = 0.0  # hysteresis: ignore marginal surpluses (noise)
            delta_rps[name] = delta

        # Scale down gradually: draining several pods at once dumps their
        # queues onto the survivors and spikes the tail latency.
        downs_allowed = {
            name: min(self.max_down_per_tick, max(0, len(pods) - floors[name]))
            for name, pods in running.items()
        }
        for action in self.scaler.plan(delta_rps, running):
            if isinstance(action, ScaleUpAction):
                self._apply_up(action)
            elif isinstance(action, ScaleDownAction):
                if downs_allowed.get(action.function, 0) <= 0:
                    continue
                downs_allowed[action.function] -= 1
                self._apply_down(action)

        # Background defragmentation last: it sees this tick's placements,
        # and migrations it starts are make-before-break (no capacity dip
        # for the next tick's gap computation to misread).
        if self.defragmenter is not None:
            self.defragmenter.on_tick()

        self.replica_series.append(
            (now, {name: c.replica_count for name, c in self.controllers.items()})
        )
        if self._running:
            self._handle = self.engine.schedule(self.interval, self._tick)

    def _apply_up(self, action: ScaleUpAction) -> None:
        controller = self.controllers[action.function]
        # A parked WARM_IDLE pod beats a fresh placement: promotion costs
        # nothing (model resident, rectangle already bound) and serves now.
        warm = self.gateway.claim_warm(action.function)
        if warm is not None:
            self._last_scale_up[action.function] = self.engine.now
            self._note(
                SchedulerEvent(self.engine.now, action.function, "promote",
                               warm.pod.spec.sm_partition, warm.pod.spec.quota_limit,
                               warm.pod.node_name),
                pod=warm.pod.pod_id,
            )
            return
        # Next-best: a HOST_RESIDENT pod — a fabric swap-in instead of a
        # fresh placement plus full cold start.
        if self.lifecycle is not None:
            pod = self.lifecycle.promote(action.function)
            if pod is not None:
                self._last_scale_up[action.function] = self.engine.now
                self._note(
                    SchedulerEvent(self.engine.now, action.function, "swapin",
                                   pod.spec.sm_partition, pod.spec.quota_limit,
                                   pod.node_name),
                    pod=pod.pod_id,
                )
                return
        try:
            # The scaler plans with Q as both request and limit; deploying at
            # [Q, Q] matches the profiling convention the throughputs assume.
            replica = self.place_pod(controller, action.sm_partition, action.quota, action.quota)
        except NoFitError:
            event = SchedulerEvent(self.engine.now, action.function, "nofit",
                                   action.sm_partition, action.quota, None)
            if self.engine.hub.enabled:
                self._note(
                    event,
                    rejects=self._reject_reasons(
                        controller, action.sm_partition, action.quota
                    ),
                )
            else:
                self._note(event)
            return
        self._last_scale_up[action.function] = self.engine.now
        self._note(
            SchedulerEvent(self.engine.now, action.function, "up",
                           action.sm_partition, action.quota,
                           replica.pod.node_name),
            pod=replica.pod.pod_id,
        )

    def _apply_down(self, action: ScaleDownAction) -> None:
        controller = self.controllers[action.function]
        if action.pod_id not in controller.replicas:
            return  # raced with an earlier removal
        node = self.placement.node_of(action.pod_id)
        controller.scale_down(action.pod_id, drain=True)
        try:
            self.placement.unbind(action.pod_id)
        except KeyError:
            pass
        self._note(
            SchedulerEvent(self.engine.now, action.function, "down", 0.0, 0.0, node),
            pod=action.pod_id,
        )

    def _throughput_of(self, function: str, sm: float, quota: float,
                       pod_id: str | None = None) -> float:
        factor = 1.0
        if pod_id is not None:
            # Profiles are calibrated on the V100; a pod serving from a
            # faster/slower GPU type delivers proportionally scaled RPS.
            pod = self.cluster.pods.get(pod_id)
            if pod is not None and pod.node_name is not None:
                factor = self.cluster.node(pod.node_name).speed_factor
        point = self.database.get(function, sm, quota)
        if point is not None and factor == 1.0:
            return point.throughput
        # Non-calibration GPU types (and pods outside the profiled grid) use
        # the analytic rate: host time is CPU-side, so scaling the profiled
        # number linearly by the factor would overestimate duty-bound configs.
        model = self.controllers[function].function.model
        return model.expected_rate(sm, quota, gpu_factor=factor)
