"""Placement baselines for the ablation study (DESIGN.md A1).

* :class:`QuotaPackingScheduler` — what a time-sharing-only system
  (KubeShare-like) can do: pack pods by Σ quota ≤ 100% per GPU, first-fit;
  the spatial dimension does not exist for it (every pod gets all SMs).
* :class:`FirstFitRectScheduler` — 2D placement that takes the *first*
  fitting free rectangle on the *first* node instead of the global
  best-area match (isolates the benefit of MRA's best matching).
* :class:`GuillotineRectangleList` — disjoint guillotine splits without the
  maximal-rectangle overlap or intersection update (isolates the benefit of
  keeping maximal rectangles).
"""

from __future__ import annotations

import typing as _t

from repro.scheduler.mra import GPU_H, GPU_W, NoFitError
from repro.scheduler.rectangles import EPS, Rect


class QuotaPackingScheduler:
    """1D (time-quota only) first-fit packing across GPUs.

    ``capacities`` optionally overrides the per-node quota capacity (a
    heterogeneous cluster where some nodes host bigger/multi-context GPUs);
    nodes not listed keep the uniform ``capacity``.
    """

    def __init__(
        self,
        node_names: _t.Sequence[str],
        capacity: float = 1.0,
        capacities: _t.Mapping[str, float] | None = None,
    ):
        if not node_names:
            raise ValueError("need at least one node")
        self.capacities: dict[str, float] = {
            name: (capacities or {}).get(name, capacity) for name in node_names
        }
        if any(c <= 0 for c in self.capacities.values()):
            raise ValueError("node quota capacities must be positive")
        self._max_capacity = max(self.capacities.values())
        self.load: dict[str, float] = {name: 0.0 for name in node_names}
        self._bindings: dict[str, tuple[str, float]] = {}

    def bind(self, pod_id: str, quota: float) -> str:
        """Place by quota; returns the node name (first fit)."""
        if pod_id in self._bindings:
            raise ValueError(f"pod {pod_id} already bound")
        if not 0 < quota <= self._max_capacity:
            raise ValueError(f"quota {quota} outside (0, {self._max_capacity}]")
        for name, used in self.load.items():
            if used + quota <= self.capacities[name] + EPS:
                self.load[name] = used + quota
                self._bindings[pod_id] = (name, quota)
                return name
        raise NoFitError(f"no GPU has {quota:.2f} quota available")

    def unbind(self, pod_id: str) -> str:
        name, quota = self._bindings.pop(pod_id)
        self.load[name] -= quota
        return name

    def gpus_in_use(self) -> int:
        return sum(1 for used in self.load.values() if used > EPS)


class GuillotineRectangleList:
    """Disjoint-split 2D packing on one GPU (no maximal rectangles).

    On placement the chosen free rectangle is cut into two disjoint pieces
    along the axis with the shorter leftover; removal merges nothing.  Same
    interface subset as :class:`~repro.scheduler.mra.GPURectangleList` so the
    ablation bench can swap them.
    """

    def __init__(self, width: float = GPU_W, height: float = GPU_H):
        self.width = width
        self.height = height
        self.free: list[Rect] = [Rect(0.0, 0.0, width, height)]
        self.placed: dict[str, Rect] = {}

    def best_fit(self, w: float, h: float) -> Rect | None:
        fitting = [r for r in self.free if r.fits(w, h)]
        if not fitting:
            return None
        return min(fitting, key=lambda r: (r.area - w * h, r.x, r.y))

    def can_fit(self, w: float, h: float) -> bool:
        return self.best_fit(w, h) is not None

    def place(self, pod_id: str, w: float, h: float) -> Rect:
        if pod_id in self.placed:
            raise ValueError(f"pod {pod_id} already placed")
        rect = self.best_fit(w, h)
        if rect is None:
            raise NoFitError(f"no free rectangle fits ({w}, {h})")
        pod_rect = Rect(rect.x, rect.y, w, h)
        self.free.remove(rect)
        # Shorter-leftover-axis split: keeps pieces square-ish but disjoint.
        leftover_w = rect.w - w
        leftover_h = rect.h - h
        if leftover_w < leftover_h:
            if leftover_w > EPS:
                self.free.append(Rect(rect.x + w, rect.y, leftover_w, h))
            if leftover_h > EPS:
                self.free.append(Rect(rect.x, rect.y + h, rect.w, leftover_h))
        else:
            if leftover_h > EPS:
                self.free.append(Rect(rect.x, rect.y + h, w, leftover_h))
            if leftover_w > EPS:
                self.free.append(Rect(rect.x + w, rect.y, leftover_w, rect.h))
        self.placed[pod_id] = pod_rect
        return pod_rect

    def remove(self, pod_id: str) -> Rect:
        rect = self.placed.pop(pod_id)
        self.free.append(rect)
        return rect

    def used_area(self) -> float:
        return sum(r.area for r in self.placed.values())


class FirstFitRectScheduler:
    """2D placement: first node whose list has any fitting rectangle.

    With ``node_factors`` (per-node GPU-type speed factors) the first-fit
    scan visits faster GPU types first — a cheap GPU-type-affinity baseline
    for heterogeneous clusters; without it, nodes are scanned in the given
    order.
    """

    def __init__(
        self,
        node_names: _t.Sequence[str],
        node_factors: _t.Mapping[str, float] | None = None,
    ):
        from repro.scheduler.mra import GPURectangleList  # same geometry

        names = list(node_names)
        if node_factors is not None:
            names.sort(key=lambda n: (-node_factors.get(n, 1.0), n))
        self.gpus: dict[str, GPURectangleList] = {
            name: GPURectangleList() for name in names
        }
        self._bindings: dict[str, str] = {}

    def bind(self, pod_id: str, w: float, h: float) -> str:
        for name, gpu in self.gpus.items():
            rect = next((r for r in gpu.free if r.fits(w, h)), None)
            if rect is not None:
                gpu.place(pod_id, w, h, target=rect)
                self._bindings[pod_id] = name
                return name
        raise NoFitError(f"no GPU can fit pod rectangle ({w}, {h})")

    def unbind(self, pod_id: str) -> str:
        name = self._bindings.pop(pod_id)
        self.gpus[name].remove(pod_id)
        return name

    def gpus_in_use(self) -> int:
        return sum(1 for gpu in self.gpus.values() if gpu.placed)
