"""Resource-rectangle geometry (paper §3.4.2, Fig. 6).

A GPU's 2D resource is a ``W × H = 100 quota × 100 SMs`` rectangle; pods are
``(w=quota·100, h=SM%)`` rectangles.  These helpers implement the geometric
primitives of the Maximal Rectangles Algorithm:

* :func:`subtract` — the up-to-four *maximal* complements of a free rectangle
  with respect to a placed one (the ``Subdivide`` operation);
* :func:`prune_contained` — drop free rectangles nested inside others
  ("smaller resource rectangles inside larger rectangles are merged").
"""

from __future__ import annotations

import dataclasses
import typing as _t

#: Geometric tolerance: resource percentages are well above this scale.
EPS = 1e-9


@dataclasses.dataclass(frozen=True, slots=True)
class Rect:
    """An axis-aligned rectangle; x is the quota axis, y the SM axis."""

    x: float
    y: float
    w: float
    h: float

    def __post_init__(self) -> None:
        if self.w < 0 or self.h < 0:
            raise ValueError(f"negative extent: {self}")

    @property
    def right(self) -> float:
        return self.x + self.w

    @property
    def top(self) -> float:
        return self.y + self.h

    @property
    def area(self) -> float:
        return self.w * self.h

    def contains(self, other: "Rect") -> bool:
        """True if ``other`` lies fully inside this rectangle."""
        return (
            other.x >= self.x - EPS
            and other.y >= self.y - EPS
            and other.right <= self.right + EPS
            and other.top <= self.top + EPS
        )

    def contains_point(self, px: float, py: float) -> bool:
        return self.x - EPS <= px <= self.right + EPS and self.y - EPS <= py <= self.top + EPS

    def intersects(self, other: "Rect") -> bool:
        """True if the rectangles overlap with positive area."""
        return (
            self.x < other.right - EPS
            and other.x < self.right - EPS
            and self.y < other.top - EPS
            and other.y < self.top - EPS
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlap rectangle, or None when disjoint (or edge-touching)."""
        if not self.intersects(other):
            return None
        x = max(self.x, other.x)
        y = max(self.y, other.y)
        right = min(self.right, other.right)
        top = min(self.top, other.top)
        return Rect(x, y, right - x, top - y)

    def fits(self, w: float, h: float) -> bool:
        """Can a (w, h) pod rectangle be placed inside?"""
        return self.w >= w - EPS and self.h >= h - EPS


def subtract(free: Rect, placed: Rect) -> list[Rect]:
    """Maximal complements of ``free`` after removing ``placed``'s area.

    Returns up to four overlapping rectangles — each maximal in one direction
    (left/right of, below/above the intersection).  Returns ``[free]``
    unchanged when there is no overlap.
    """
    overlap = free.intersection(placed)
    if overlap is None:
        return [free]
    pieces: list[Rect] = []
    if overlap.x - free.x > EPS:  # left sliver, full height
        pieces.append(Rect(free.x, free.y, overlap.x - free.x, free.h))
    if free.right - overlap.right > EPS:  # right sliver, full height
        pieces.append(Rect(overlap.right, free.y, free.right - overlap.right, free.h))
    if overlap.y - free.y > EPS:  # bottom sliver, full width
        pieces.append(Rect(free.x, free.y, free.w, overlap.y - free.y))
    if free.top - overlap.top > EPS:  # top sliver, full width
        pieces.append(Rect(free.x, overlap.top, free.w, free.top - overlap.top))
    return pieces


def prune_contained(rects: list[Rect]) -> list[Rect]:
    """Remove rectangles contained in another (keeps the first of duplicates)."""
    kept: list[Rect] = []
    # Sort by descending area so containers precede their contents.
    for rect in sorted(rects, key=lambda r: -r.area):
        if rect.area <= EPS:
            continue
        if any(other.contains(rect) for other in kept):
            continue
        kept.append(rect)
    return kept


def covered(rects: list[Rect], px: float, py: float) -> bool:
    """Is the point covered by any rectangle? (test helper for coverage)."""
    return any(r.contains_point(px, py) for r in rects)


def total_area(rects: _t.Iterable[Rect]) -> float:
    """Sum of rectangle areas (exact for disjoint sets, e.g. placed pods)."""
    return sum(r.area for r in rects)


def pairwise_disjoint(rects: _t.Sequence[Rect]) -> bool:
    """True if no two rectangles overlap with positive area.

    Placed pod rectangles must always satisfy this — overlap would mean two
    pods were granted the same quota×SM resource (an over-commit).  Used by
    the cluster-placement property tests and debug assertions.
    """
    for i, a in enumerate(rects):
        for b in rects[i + 1 :]:
            if a.intersects(b):
                return False
    return True


def within_bounds(rects: _t.Iterable[Rect], width: float, height: float) -> bool:
    """True if every rectangle lies inside the ``width × height`` GPU box."""
    box = Rect(0.0, 0.0, width, height)
    return all(box.contains(r) for r in rects)
