"""Ablations (DESIGN.md A1-A3): which design choices carry the results.

* **A1 — placement**: MRA vs first-fit rectangles vs 1D quota packing on a
  randomized pod stream; metric = GPUs needed / pods placed before the first
  rejection.
* **A2 — multi-token vs single-token**: the same 8-pod spatial workload run
  through the FaST backend (partitions as configured) vs a KubeShare-like
  backend (partitions forced to 100% → single token passes among pods).
* **A3 — Q_miss priority vs plain capacity**: with heterogeneous quotas under
  contention, the Q_miss-ordered queue keeps each pod near its guaranteed
  share; the ablation measures the worst pod's shortfall.
"""

from __future__ import annotations

import dataclasses
import typing as _t

import numpy as np

from repro.platform import FaSTGShare
from repro.scheduler import (
    FirstFitRectScheduler,
    MaximalRectanglesScheduler,
    NoFitError,
    QuotaPackingScheduler,
)

# ---------------------------------------------------------------- A1: placement

@dataclasses.dataclass(frozen=True, slots=True)
class PlacementAblation:
    strategy: str
    pods_placed: int
    gpus_used: int


def random_pod_stream(n: int, rng: np.random.Generator) -> list[tuple[float, float]]:
    """(w=quota·100, h=SM%) pods drawn from the paper's profiling grid.

    Sizes skew small (the scheduler's p_eff points live at small partitions),
    with occasional large pods — the mix where fragmentation behaviour
    differs between strategies.
    """
    quotas = np.array([0.2, 0.2, 0.4, 0.4, 0.6, 0.8])
    partitions = np.array([6, 6, 12, 12, 24, 50])
    return [
        (float(rng.choice(quotas)) * 100.0, float(rng.choice(partitions)))
        for _ in range(n)
    ]


def run_placement_ablation(
    nodes: int = 4, pods: int = 64, seed: int = 13
) -> list[PlacementAblation]:
    rng = np.random.default_rng(seed)
    stream = random_pod_stream(pods, rng)
    node_names = [f"node{i}" for i in range(nodes)]
    results = []

    mra = MaximalRectanglesScheduler(node_names)
    placed = 0
    for i, (w, h) in enumerate(stream):
        try:
            mra.bind(f"p{i}", w, h)
            placed += 1
        except NoFitError:
            break
    results.append(PlacementAblation("MRA (best-area, maximal rects)", placed, mra.gpus_in_use()))

    firstfit = FirstFitRectScheduler(node_names)
    placed = 0
    for i, (w, h) in enumerate(stream):
        try:
            firstfit.bind(f"p{i}", w, h)
            placed += 1
        except NoFitError:
            break
    results.append(PlacementAblation("first-fit rectangles", placed, firstfit.gpus_in_use()))

    packer = QuotaPackingScheduler(node_names)
    placed = 0
    for i, (w, _h) in enumerate(stream):
        try:
            packer.bind(f"p{i}", w / 100.0)
            placed += 1
        except NoFitError:
            break
    results.append(PlacementAblation("1D quota packing (time sharing)", placed, packer.gpus_in_use()))
    return results


# ------------------------------------------------------- A2: multi- vs single-token

@dataclasses.dataclass(frozen=True, slots=True)
class TokenAblation:
    backend: str
    throughput: float
    p95_ms: float
    sm_occupancy: float


def run_token_ablation(
    model: str = "resnet50",
    replicas: int = 8,
    sm: float = 12.0,
    duration: float = 10.0,
    seed: int = 42,
) -> list[TokenAblation]:
    """Identical pods through the multi-token vs single-token backend."""
    results = []
    for label, mode in (("multi-token (FaST)", "fast"), ("single-token (KubeShare)", "timeshare")):
        platform = FaSTGShare.build(nodes=1, sharing=mode, seed=seed)
        platform.register_function("fn", model=model)
        platform.deploy("fn", configs=[(sm, 1.0)] * replicas, node=0)
        report = platform.run_closed_loop("fn", concurrency=2 * replicas, duration=duration)
        (_, _util, occ), = report.node_metrics
        results.append(
            TokenAblation(backend=label, throughput=report.throughput,
                          p95_ms=report.p95_ms, sm_occupancy=occ)
        )
    return results


# --------------------------------------------------- A3: Q_miss priority fairness

@dataclasses.dataclass(frozen=True, slots=True)
class PriorityAblation:
    #: Stable pod *name* (``fastpod-<fn>-<serial>``), not the uid-suffixed
    #: ``pod_id``: uids come from a process-global counter, and the report
    #: must be bit-identical whether the suite ran serially or fanned across
    #: worker processes (see repro.experiments.runner).
    pod_name: str
    quota_request: float
    achieved_share: float

    @property
    def shortfall(self) -> float:
        """How far below its guaranteed share the pod landed (0 = met)."""
        return max(0.0, 1.0 - self.achieved_share / self.quota_request)


def run_priority_ablation(
    duration: float = 10.0, seed: int = 42
) -> list[PriorityAblation]:
    """Heterogeneous quotas under full contention: everyone meets Q_request.

    Four full-SM pods with quota requests {0.4, 0.3, 0.2, 0.1} compete for
    one GPU (Σ = 1.0).  The Q_miss priority queue should hold every pod near
    its guarantee; the output is each pod's achieved GPU-time share.
    """
    platform = FaSTGShare.build(nodes=1, sharing="timeshare", seed=seed)
    platform.register_function("fn", model="resnet50")
    quotas = [0.4, 0.3, 0.2, 0.1]
    replicas = []
    for quota in quotas:
        replicas.extend(platform.deploy("fn", configs=[(100, quota, quota)], node=0))
    report = platform.run_closed_loop("fn", concurrency=16, duration=duration)
    del report
    node = platform.cluster.node(0)
    results = []
    for replica, quota in zip(replicas, quotas):
        entry = node.backend.entries.get(replica.pod.pod_id)
        used = entry.total_gpu_seconds if entry is not None else 0.0
        results.append(
            PriorityAblation(
                pod_name=replica.pod.meta.name,
                quota_request=quota,
                achieved_share=used / duration,
            )
        )
    return results


def format_results(
    placement: _t.Sequence[PlacementAblation],
    tokens: _t.Sequence[TokenAblation],
    priority: _t.Sequence[PriorityAblation],
) -> str:
    lines = ["Ablation A1 — placement strategy (64-pod random stream, 4 GPUs)"]
    for row in placement:
        lines.append(f"  {row.strategy:<34} placed {row.pods_placed:3d} pods on {row.gpus_used} GPUs")
    lines.append("Ablation A2 — token scheduler")
    for row in tokens:
        lines.append(
            f"  {row.backend:<26} {row.throughput:7.1f} req/s  p95 {row.p95_ms:7.1f} ms  "
            f"occ {row.sm_occupancy:5.2f}%"
        )
    lines.append("Ablation A3 — Q_miss priority: achieved GPU share vs guarantee")
    for row in priority:
        lines.append(
            f"  {row.pod_name:<28} requested {row.quota_request:.2f}  "
            f"achieved {row.achieved_share:.3f}  shortfall {100 * row.shortfall:4.1f}%"
        )
    return "\n".join(lines)
