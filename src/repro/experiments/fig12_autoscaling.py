"""Fig. 12 — auto-scaling to meet the SLO under a stepped workload.

A single ResNet function (SLO 69 ms) faces a 0→100 req/s staircase trace.
The FaST-Scheduler runs the Heuristic Scaling Algorithm against the profile
database and places pods with MRA.  The control path is the predictive
autoscaler's **reactive degenerate** (``policy="reactive"``: no
forecasters, no pre-warming) — the same controller the predictive policies
run through, so this figure exercises exactly the code path prewarm-bench
baselines against.  The experiment is expressed as a declarative
:class:`~repro.scenario.Scenario` (see :func:`build_scenario`) evaluated by
``FaSTGShare.run_scenario`` — the same path fig14/fig15 and the ``scenario``
CLI replay.  The paper's acceptance bar: the SLO violation ratio stays
below ~1% overall while the replica count tracks the workload.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.faas.slo import violation_ratio, violation_series
from repro.faas.workload import StepTrace, Workload
from repro.platform import FaSTGShare
from repro.scenario import (
    AutoscalerSpec,
    ClusterSpec,
    MeasurementSpec,
    Scenario,
    ScenarioFunction,
    WorkloadSpec,
)


@dataclasses.dataclass(frozen=True, slots=True)
class Fig12Result:
    times: np.ndarray
    offered_rps: np.ndarray
    completed_rps: np.ndarray
    replica_counts: np.ndarray
    violation_times: np.ndarray
    violation_ratios: np.ndarray
    overall_violation_ratio: float
    max_replicas: int
    slo_ms: float
    completed: int
    submitted: int


def build_scenario(
    workload: Workload | None = None,
    slo_ms: float = 69.0,
    seed: int = 42,
    quick: bool = False,
    interval: float = 0.5,
    headroom: float = 1.4,
) -> tuple[Scenario, Workload]:
    """The declarative form of this figure: one function, a steps workload.

    ``workload`` must be a :class:`StepTrace` (the staircase the paper
    plots); its steps embed directly into the Scenario spec.
    """
    if workload is None:
        workload = StepTrace.fig12_trace() if not quick else StepTrace(
            [(10, 10), (10, 40), (10, 70), (10, 30)]
        )
    if not isinstance(workload, StepTrace):
        raise ValueError(
            "fig12 drives a stepped trace; pass a StepTrace (or None for the default)"
        )
    scenario = Scenario(
        name="fig12-autoscaling",
        seed=seed,
        cluster=ClusterSpec(nodes=2, gpu="V100"),
        functions=(
            # Model sharing keeps scale-up cold starts short (paper architecture).
            ScenarioFunction(
                name="resnet",
                model="resnet50",
                slo_ms=slo_ms,
                model_sharing=True,
                workload=WorkloadSpec(
                    kind="steps",
                    steps=tuple((d, r) for d, r in workload.steps),
                    poisson=workload.poisson,
                ),
            ),
        ),
        autoscaler=AutoscalerSpec(
            policy="reactive",
            interval=interval,
            headroom=headroom,
            scale_down_cooldown=10.0,
            # Marginal surpluses must not trigger scale-down: removing a pod
            # pushes the survivors into queueing territory the 69 ms SLO
            # cannot absorb.
            down_hysteresis=0.3,
        ),
        measurement=MeasurementSpec(drain_s=2.0, sample_dt=1.0),
    )
    return scenario, workload


def run(
    workload: Workload | None = None,
    slo_ms: float = 69.0,
    seed: int = 42,
    quick: bool = False,
    interval: float = 0.5,
    headroom: float = 1.4,
) -> Fig12Result:
    scenario, workload = build_scenario(
        workload, slo_ms=slo_ms, seed=seed, quick=quick, interval=interval, headroom=headroom
    )
    report = FaSTGShare.run_scenario(scenario)

    horizon = workload.duration
    log = report.function("resnet").run.log
    # Shift completion times to trace-relative before binning.
    for request in log.completed:
        request.end -= report.t0
        request.arrival -= report.t0
    times, completed_rps = log.completions_per_second(horizon)
    offered = np.array([workload.rps_at(t - 0.5) for t in times])
    violation_t, violation_r = violation_series(log, slo_ms, horizon)

    series = [(t, sum(counts.values())) for t, counts in report.replica_series]
    replica_counts = np.zeros(len(times))
    for i, t in enumerate(times):
        past = [count for st, count in series if st <= t]
        replica_counts[i] = past[-1] if past else 1
    return Fig12Result(
        times=times,
        offered_rps=offered,
        completed_rps=completed_rps,
        replica_counts=replica_counts,
        violation_times=violation_t,
        violation_ratios=violation_r,
        overall_violation_ratio=violation_ratio(log, slo_ms),
        max_replicas=int(replica_counts.max()),
        slo_ms=slo_ms,
        completed=len(log),
        submitted=report.function("resnet").run.submitted,
    )


def format_result(result: Fig12Result) -> str:
    lines = [
        "Fig. 12 — auto-scaling to meet the SLO",
        f"  SLO {result.slo_ms:.0f} ms   completed {result.completed}/{result.submitted}",
        f"  overall violation ratio: {100 * result.overall_violation_ratio:.2f}% "
        "(paper: below 1%)",
        f"  replicas: 1 → max {result.max_replicas}",
        "  t(s)  offered  served  replicas  violations%",
    ]
    step = max(1, len(result.times) // 12)
    for i in range(0, len(result.times), step):
        lines.append(
            f"  {result.times[i]:5.0f}  {result.offered_rps[i]:7.1f} "
            f"{result.completed_rps[i]:7.1f}  {result.replica_counts[i]:8.0f} "
            f" {100 * result.violation_ratios[min(i, len(result.violation_ratios) - 1)]:6.2f}"
        )
    return "\n".join(lines)
