"""Fig. 13 — GPU memory footprint with and without model sharing.

Two parts:

* the footprint bars for ResNet50 / ResNet152 / ResNeXt-xlarge / ViT-Huge
  (original vs shared-pod vs shared-tensor-with-context), *measured* by
  deploying pods on a node and reading the device memory ledger — not just
  computed from the profiles;
* capacity effects (§5.5): a 16 GB V100 fits 7 ResNeXt pods with sharing vs
  4 without, and the multi-pod totals (e.g. 3 ViT pods: 9282 vs 14205 MB).
"""

from __future__ import annotations

import dataclasses

from repro.models import get_model
from repro.platform import FaSTGShare

FIG13_MODELS: tuple[str, ...] = ("resnet50", "resnet152", "resnext_xlarge", "vit_huge")

#: The paper's reported bars (MB): model -> (original, shared pod, server).
PAPER_BARS: dict[str, tuple[float, float, float]] = {
    "resnet50": (1525, 1427, 416),
    "resnet152": (1745, 1501, 601),
    "resnext_xlarge": (3335, 1829, 1805),
    "vit_huge": (4735, 2101, 2979),
}


@dataclasses.dataclass(frozen=True, slots=True)
class Fig13Bar:
    model: str
    original_mb: float      # measured single-pod footprint, no sharing
    shared_pod_mb: float    # measured per-pod footprint under sharing
    server_mb: float        # measured storage-server footprint (tensors+ctx)


@dataclasses.dataclass(frozen=True, slots=True)
class Fig13Result:
    bars: list[Fig13Bar]
    resnext_pods_without_sharing: int
    resnext_pods_with_sharing: int
    vit3_shared_mb: float
    vit3_original_mb: float

    def bar(self, model: str) -> Fig13Bar:
        for bar in self.bars:
            if bar.model == model:
                return bar
        raise KeyError(model)


def _measure_bar(model_name: str, seed: int) -> Fig13Bar:
    # Original: one pod, no sharing.
    plain = FaSTGShare.build(nodes=1, sharing="fast", seed=seed)
    plain.register_function("fn", model=model_name, model_sharing=False)
    replica = plain.deploy("fn", configs=[(50, 1.0)])[0]
    plain.wait_ready()
    device = plain.cluster.node(0).device
    original = device.memory.owner_usage_mb(replica.pod.pod_id)

    # Shared: one pod + the storage server holding the tensors.
    shared = FaSTGShare.build(nodes=1, sharing="fast", seed=seed)
    shared.register_function("fn", model=model_name, model_sharing=True)
    replica_s = shared.deploy("fn", configs=[(50, 1.0)])[0]
    shared.wait_ready()
    node_s = shared.cluster.node(0)
    device_s = node_s.device
    pod_mb = device_s.memory.owner_usage_mb(replica_s.pod.pod_id)
    server_mb = device_s.memory.owner_usage_mb(node_s.model_storage.name)
    return Fig13Bar(model=model_name, original_mb=original,
                    shared_pod_mb=pod_mb, server_mb=server_mb)


def _max_pods(model_name: str, sharing: bool, seed: int) -> int:
    """Deploy pods until the device refuses (memory), return the count."""
    from repro.gpu.memory import GpuOutOfMemoryError

    platform = FaSTGShare.build(nodes=1, sharing="fast", seed=seed)
    platform.register_function("fn", model=model_name, model_sharing=sharing)
    count = 0
    while count < 32:
        try:
            platform.deploy("fn", configs=[(6, 0.1)], node=0)
        except GpuOutOfMemoryError:
            break
        count += 1
    return count


def run(seed: int = 42, quick: bool = False) -> Fig13Result:
    bars = [_measure_bar(name, seed) for name in FIG13_MODELS]
    vit = get_model("vit_huge").memory
    return Fig13Result(
        bars=bars,
        resnext_pods_without_sharing=_max_pods("resnext_xlarge", False, seed),
        resnext_pods_with_sharing=_max_pods("resnext_xlarge", True, seed),
        vit3_shared_mb=vit.total_mb(3, shared=True),
        vit3_original_mb=vit.total_mb(3, shared=False),
    )


def format_result(result: Fig13Result) -> str:
    lines = [
        "Fig. 13 — GPU memory footprint (MB): measured vs paper",
        "  model             original (paper)    shared pod (paper)    server (paper)",
    ]
    for bar in result.bars:
        paper = PAPER_BARS[bar.model]
        lines.append(
            f"  {bar.model:<16} {bar.original_mb:8.0f} ({paper[0]:>5})   "
            f"{bar.shared_pod_mb:10.0f} ({paper[1]:>5})   "
            f"{bar.server_mb:8.0f} ({paper[2]:>5})"
        )
    lines.append(
        f"  ResNeXt pods per 16 GB V100: {result.resnext_pods_without_sharing} without "
        f"sharing, {result.resnext_pods_with_sharing} with (paper: 4 vs 7)"
    )
    lines.append(
        f"  3x ViT-Huge: {result.vit3_shared_mb:.0f} MB shared vs "
        f"{result.vit3_original_mb:.0f} MB original (paper: 9282 vs 14205)"
    )
    return "\n".join(lines)
