"""Fig. 14 (extension) — cluster-scale trace replay on heterogeneous GPUs.

The paper evaluates one node and a handful of functions under synthetic
Poisson load; its scheduler (§3.4) and the Maximal Rectangles placement are
nonetheless designed for *cluster-wide* spatio-temporal packing.  This
experiment opens that regime: a mixed fleet of DNN services with
production-shaped arrivals (diurnal tide, flash-crowd bursts, cold-heavy
tails — see :mod:`repro.faas.traces`) is replayed over a cluster of
**heterogeneous GPU nodes** (per-node GPU type, SM count, memory, serving
speed) under several node-scoring policies:

* ``binpack``  — the paper's global best-area matching (fewest GPUs);
* ``spread``   — least-allocated node first (isolation headroom);
* ``affinity`` — GPU-type affinity: fastest device type that fits.

Every policy replays the *same* trace set from the same seed, so the
reported SLO-violation rate, GPU count, and utilization differences are
attributable to placement alone.  ``python -m repro cluster-bench`` runs
this and writes ``BENCH_cluster.json``.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.faas.traces import TraceSet, load_trace_file, synthesize_trace_set
from repro.gpu.specs import gpu_spec
from repro.models.scaling import gpu_type_factor
from repro.scenario import (
    AutoscalerSpec,
    ClusterSpec,
    MeasurementSpec,
    Scenario,
    ScenarioFunction,
    WorkloadSpec,
)
from repro.scheduler.mra import PLACEMENT_POLICIES
from repro.sweep import CellResult, Sweep, SweepAxis, run_sweep

#: (function, model, trace shape, mean rps) — the default service fleet.
#: Shapes cover the three production regimes; loads are sized so the full
#: fleet stresses (but does not drown) a 4-node heterogeneous cluster.
CLUSTER_FLEET: tuple[tuple[str, str, str, float], ...] = (
    ("resnet-api", "resnet50", "diurnal", 30.0),
    ("bert-qa", "bert", "bursty", 8.0),
    ("rnnt-dictate", "rnnt", "diurnal", 3.0),
    ("gnmt-translate", "gnmt", "cold", 4.0),
    ("resnet152-batch", "resnet152", "bursty", 6.0),
    ("vit-tagging", "vit_huge", "cold", 1.0),
)

#: Default heterogeneous node sets (GPU type per node).
DEFAULT_NODES: tuple[str, ...] = ("V100", "V100", "A100", "T4")
QUICK_NODES: tuple[str, ...] = ("V100", "A100", "T4")
#: Default measurement warm-up (seconds excluded from every metric): the
#: cold ramp — first admissions, container cold starts — would otherwise
#: dominate the short replays' percentiles.  ``run(warmup_s=0.0)`` restores
#: the historical measure-from-t=0 behaviour.
DEFAULT_WARMUP_S = 30.0
QUICK_WARMUP_S = 3.0


@dataclasses.dataclass(frozen=True, slots=True)
class PolicyOutcome:
    """Replay metrics of one placement policy over the shared trace set."""

    policy: str
    submitted: int
    completed: int
    slo_violation_ratio: float
    per_function_violations: dict[str, float]
    p95_ms: float
    peak_gpus: int
    mean_gpus: float
    mean_alloc_fraction: float
    node_utilization: dict[str, float]
    scale_ups: int
    scale_downs: int
    nofit_events: int


@dataclasses.dataclass(frozen=True, slots=True)
class ClusterResult:
    """All policies' outcomes plus the replayed-trace metadata."""

    nodes: tuple[str, ...]
    node_factors: dict[str, float]
    functions: tuple[tuple[str, str, str, float], ...]
    trace_seed: int
    bins: int
    bin_s: float
    duration: float
    outcomes: tuple[PolicyOutcome, ...]

    def outcome(self, policy: str) -> PolicyOutcome:
        for out in self.outcomes:
            if out.policy == policy:
                return out
        raise KeyError(f"no outcome for policy {policy!r}")


def sweep_for_policies(
    trace_set: TraceSet,
    nodes: _t.Sequence[str],
    policies: _t.Sequence[str],
    seed: int,
    interval: float,
    sample_dt: float = 1.0,
    warmup_s: float = 0.0,
) -> Sweep:
    """The declarative form of the whole comparison: one Sweep, one axis.

    The base Scenario embeds the replayed per-bin counts (``counts``
    workloads) once; the ``placement`` axis expands it into one cell per
    policy, so every cell replays identical arrivals from the shared seed
    and the reported differences are attributable to placement alone.
    Model sharing stays on fleet-wide — it keeps trace-burst scale-ups
    warm-start cheap (the paper's architecture point; without it cold-tail
    functions pay a full model load on every flash crowd).
    """
    functions = tuple(
        ScenarioFunction(
            name=trace.function,
            model=trace.model,
            model_sharing=True,
            workload=WorkloadSpec(
                kind="counts", counts=trace.counts, bin_s=trace.bin_s, shape=trace.shape
            ),
        )
        for trace in trace_set.traces
    )
    base = Scenario(
        name="fig14",
        seed=seed,
        cluster=ClusterSpec(nodes=tuple(nodes)),
        functions=functions,
        autoscaler=AutoscalerSpec(
            policy="reactive",
            interval=interval,
            headroom=1.3,
            scale_down_cooldown=8.0,
            down_hysteresis=0.3,
        ),
        measurement=MeasurementSpec(warmup_s=warmup_s, drain_s=2.0, sample_dt=sample_dt),
    )
    return Sweep(
        name="fig14-placement",
        base=base,
        axes=(SweepAxis(axis="placement", values=tuple(policies)),),
        description="Fig. 14: heterogeneous-cluster trace replay per placement policy",
    )


def scenario_for_policy(
    trace_set: TraceSet,
    nodes: _t.Sequence[str],
    policy: str,
    seed: int,
    interval: float,
    sample_dt: float = 1.0,
) -> Scenario:
    """One policy's fully materialized replay Scenario (a single sweep cell)."""
    sweep = sweep_for_policies(trace_set, nodes, [policy], seed, interval, sample_dt)
    return sweep.cells()[0].scenario


def _outcome_from_cell(cell: CellResult) -> PolicyOutcome:
    """Reduce one executed sweep cell to this figure's per-policy metrics."""
    metrics = cell.metrics
    return PolicyOutcome(
        policy=dict(cell.coords)["placement"],
        submitted=metrics["submitted"],
        completed=metrics["completed"],
        slo_violation_ratio=metrics["slo_violation_ratio"],
        per_function_violations=metrics["per_function_violations"],
        p95_ms=metrics["p95_ms"],
        peak_gpus=metrics["peak_gpus"],
        mean_gpus=metrics["mean_gpus"],
        mean_alloc_fraction=metrics["mean_alloc_fraction"],
        node_utilization=metrics["node_utilization"],
        scale_ups=metrics["scale_ups"],
        scale_downs=metrics["scale_downs"],
        nofit_events=metrics["nofit_events"],
    )


def run(
    quick: bool = False,
    seed: int = 42,
    nodes: _t.Sequence[str] | None = None,
    policies: _t.Sequence[str] | None = None,
    bins: int | None = None,
    bin_s: float | None = None,
    fleet: _t.Sequence[tuple[str, str, str, float]] | None = None,
    trace_file: str | None = None,
    jobs: int = 1,
    warmup_s: float | None = None,
) -> ClusterResult:
    """Replay a production-shaped trace set under each placement policy.

    ``trace_file`` replays a committed/public trace file (see
    :func:`repro.faas.traces.load_trace_file`) instead of synthesizing one;
    the fleet, horizon, and bin width then come from the file.  ``jobs``
    fans the per-policy cells across the experiment process pool
    (bit-identical to serial); ``warmup_s`` opens the measured window after
    the initial ramp — ``None`` (the default) honours the measurement
    warm-up (:data:`QUICK_WARMUP_S`/:data:`DEFAULT_WARMUP_S`) so steady-state
    metrics exclude the cold ramp; pass ``0.0`` to measure from ``t=0``.
    """
    if warmup_s is None:
        warmup_s = QUICK_WARMUP_S if quick else DEFAULT_WARMUP_S
    if nodes is None:
        nodes = QUICK_NODES if quick else DEFAULT_NODES
    if policies is None:
        policies = PLACEMENT_POLICIES
    for policy in policies:
        if policy not in PLACEMENT_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {PLACEMENT_POLICIES}")
    if trace_file is not None:
        trace_set = load_trace_file(trace_file)
        fleet = tuple(
            (t.function, t.model, t.shape, round(t.mean_rps, 3)) for t in trace_set.traces
        )
        bins = max(len(t.counts) for t in trace_set.traces)
        bin_s = trace_set.traces[0].bin_s
        if trace_set.seed is not None:
            seed = trace_set.seed
    else:
        if fleet is None:
            fleet = CLUSTER_FLEET[:4] if quick else CLUSTER_FLEET
        if bins is None:
            bins = 10 if quick else 24
        if bin_s is None:
            bin_s = 3.0 if quick else 10.0
        trace_set = synthesize_trace_set(list(fleet), bins=bins, bin_s=bin_s, seed=seed)
    interval = 0.5 if quick else 1.0

    sweep = sweep_for_policies(trace_set, nodes, policies, seed, interval, warmup_s=warmup_s)
    sweep_report = run_sweep(sweep, jobs=jobs)
    outcomes = tuple(_outcome_from_cell(cell) for cell in sweep_report.cells)
    node_factors = {f"node{i}": gpu_type_factor(gpu_spec(name)) for i, name in enumerate(nodes)}
    return ClusterResult(
        nodes=tuple(nodes),
        node_factors=node_factors,
        functions=tuple(fleet),
        trace_seed=seed,
        bins=bins,
        bin_s=bin_s,
        duration=trace_set.duration,
        outcomes=outcomes,
    )


def format_result(result: ClusterResult) -> str:
    lines = [
        "Fig. 14 — cluster-scale trace replay across heterogeneous GPUs",
        f"  nodes: {', '.join(result.nodes)}   "
        f"(speed factors {', '.join(f'{f:.2f}' for f in result.node_factors.values())})",
        f"  fleet: {len(result.functions)} functions, trace {result.bins}x{result.bin_s:.0f}s "
        f"bins, seed {result.trace_seed}",
        "  policy    SLO-viol%   p95(ms)   peak GPUs  mean GPUs  alloc%  ups/downs/nofit",
    ]
    for out in result.outcomes:
        lines.append(
            f"  {out.policy:<9} {100 * out.slo_violation_ratio:8.2f}  {out.p95_ms:8.1f} "
            f"{out.peak_gpus:10d} {out.mean_gpus:10.2f} "
            f"{100 * out.mean_alloc_fraction:6.1f}  "
            f"{out.scale_ups}/{out.scale_downs}/{out.nofit_events}"
        )
    for out in result.outcomes:
        worst = max(out.per_function_violations.items(), key=lambda kv: kv[1])
        lines.append(
            f"  [{out.policy}] completed {out.completed}/{out.submitted}, "
            f"worst function {worst[0]} at {100 * worst[1]:.2f}% violations"
        )
    return "\n".join(lines)


def report_payload(result: ClusterResult) -> dict:
    """The ``BENCH_cluster.json`` payload for one run."""
    return {
        "benchmark": "cluster",
        "nodes": list(result.nodes),
        "node_factors": result.node_factors,
        "functions": [
            {"function": f, "model": m, "shape": s, "mean_rps": r}
            for f, m, s, r in result.functions
        ],
        "trace": {"seed": result.trace_seed, "bins": result.bins, "bin_s": result.bin_s},
        "duration_s": result.duration,
        "policies": {
            out.policy: {
                "slo_violation_ratio": out.slo_violation_ratio,
                "per_function_violations": out.per_function_violations,
                "p95_ms": out.p95_ms,
                "peak_gpus": out.peak_gpus,
                "mean_gpus": out.mean_gpus,
                "mean_alloc_fraction": out.mean_alloc_fraction,
                "node_utilization": out.node_utilization,
                "submitted": out.submitted,
                "completed": out.completed,
                "scale_ups": out.scale_ups,
                "scale_downs": out.scale_downs,
                "nofit_events": out.nofit_events,
            }
            for out in result.outcomes
        },
    }


def write_cluster_report(path: str, result: ClusterResult) -> dict:
    """Serialize :func:`report_payload` to ``path``; returns the payload."""
    payload = report_payload(result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
