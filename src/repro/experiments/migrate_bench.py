"""Migrate-bench — the defragmentation headline: live migration on vs off
over a deliberately fragmented spread-placement fleet.

The fleet is engineered to fragment: every function bursts at once under
``spread`` placement (which scatters replicas one-per-GPU by design), then
decays to a trickle.  The autoscaler scales the burst replicas away, but
the survivors — one small rectangle per function — are stranded one per
GPU: every node is nearly free, yet no node *is* free.  Cluster
fragmentation (1 − largest-free-rectangle / total-free) stays high for the
whole tail, and the cluster holds many more GPUs than the workload needs.

Two cells replay the same arrivals through the ``defrag`` sweep axis:

* ``off`` — no migration machinery at all (``cluster.defrag`` absent), the
  exact pre-migration platform;
* ``on``  — the background defragmenter (:mod:`repro.migrate`): when
  fragmentation crosses its threshold it live-migrates stragglers onto
  shared GPUs — make-before-break, so not one request is lost — and
  releases the emptied GPUs.

Violations are counted honestly, as in swap-bench: a request never served
in-window counts as a violation (``effective_violation_ratio``), so the
defragmenter cannot win by dropping work mid-handoff.

The acceptance bar: defrag-on must *strictly improve* the fragmented fleet
— fewer mean GPUs at equal-or-better effective violations (or strictly
fewer violations at equal-or-fewer GPUs).  ``python -m repro migrate-bench
[--quick]`` runs the comparison and writes ``BENCH_migrate.json``.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.scenario import (
    AutoscalerSpec,
    ClusterSpec,
    MeasurementSpec,
    Scenario,
    ScenarioFunction,
    WorkloadSpec,
)
from repro.sweep import CellResult, Sweep, SweepAxis, run_sweep

#: Default cluster: homogeneous V100 nodes, sized so the burst needs most
#: of them but the tail needs very few — maximal room to defragment.
MIGRATE_NODES: tuple[str, ...] = ("V100",) * 6
QUICK_MIGRATE_NODES: tuple[str, ...] = ("V100",) * 4

#: Default defrag trigger threshold compared against ``off``.
DEFRAG_THRESHOLD = 0.3

#: Burst-then-decay shape: (duration_s, rps) pairs per phase.
BURST_PHASE = (12.0, 10.0)
TAIL_PHASE = (90.0, 0.4)
QUICK_BURST_PHASE = (8.0, 12.0)
QUICK_TAIL_PHASE = (30.0, 0.5)


def fragmented_fleet(size: int) -> tuple[str, ...]:
    """Function names of the synchronized burst-then-decay fleet."""
    if size < 2:
        raise ValueError("the fragmented fleet needs at least two functions")
    return tuple(f"burst-{i:02d}" for i in range(size))


def base_scenario(
    fleet: _t.Sequence[str],
    nodes: _t.Sequence[str],
    seed: int,
    burst: tuple[float, float],
    tail: tuple[float, float],
) -> Scenario:
    """The fragmented spread-placement base Scenario (defrag *off*).

    Every function bursts simultaneously (same step schedule), so ``spread``
    placement scatters the scale-up across every node; the long low-rate
    tail then strands one surviving replica per function, one per GPU.  The
    base carries no ``cluster.defrag`` — the sweep's ``defrag`` axis turns
    the defragmenter on for the comparison cell, so the ``off`` cell is the
    byte-exact pre-migration platform.
    """
    functions = tuple(
        ScenarioFunction(
            name=name,
            model="resnet50",
            min_replicas=0,
            workload=WorkloadSpec(kind="steps", steps=(burst, tail)),
        )
        for name in fleet
    )
    return Scenario(
        name="fragmented-spread",
        seed=seed,
        description=(
            "Synchronized burst-then-decay fleet under spread placement: the "
            "decayed tail strands one replica per GPU — the live-migration "
            "defragmentation headline scenario."
        ),
        cluster=ClusterSpec(nodes=tuple(nodes)),
        autoscaler=AutoscalerSpec(
            placement="spread", min_replicas=0, scale_down_cooldown=4.0
        ),
        measurement=MeasurementSpec(drain_s=5.0),
        functions=functions,
    )


def sweep_for_defrag(base: Scenario, threshold: float) -> Sweep:
    """One ``defrag`` axis (off, threshold) over the shared fragmented base."""
    return Sweep(
        name="migrate-defrag",
        base=base,
        axes=(SweepAxis(axis="defrag", values=(None, threshold)),),
        description=(
            "Background defragmentation on vs off over the fragmented "
            "spread-placement fleet"
        ),
    )


@dataclasses.dataclass(frozen=True, slots=True)
class MigrateOutcome:
    """Replay metrics of one defrag setting over the shared trace set."""

    defrag: str  # "off" | "on"
    threshold: float | None
    submitted: int
    completed: int
    slo_violation_ratio: float
    effective_violation_ratio: float
    p95_ms: float
    gpu_seconds: float
    mean_gpus: float
    peak_gpus: int
    migrations: int
    migration_aborts: int
    scale_ups: int
    scale_downs: int
    nofit_events: int

    @property
    def unserved_requests(self) -> int:
        return self.submitted - self.completed


@dataclasses.dataclass(frozen=True, slots=True)
class MigrateResult:
    """Both cells' outcomes plus the fleet/cluster metadata."""

    nodes: tuple[str, ...]
    fleet: tuple[str, ...]
    seed: int
    burst: tuple[float, float]
    tail: tuple[float, float]
    threshold: float
    outcomes: tuple[MigrateOutcome, ...]

    def outcome(self, defrag: str) -> MigrateOutcome:
        for out in self.outcomes:
            if out.defrag == defrag:
                return out
        raise KeyError(f"no outcome for defrag={defrag!r}")

    @property
    def improves(self) -> bool:
        """Defrag-on strictly improves the fragmented fleet — the acceptance
        bar: fewer mean GPUs at equal-or-better effective violations, or
        strictly fewer violations at equal-or-fewer GPUs.  Effective counts
        never-served requests, so a handoff that drops work cannot win."""
        on, off = self.outcome("on"), self.outcome("off")
        gpus_better = on.mean_gpus < off.mean_gpus
        gpus_no_worse = on.mean_gpus <= off.mean_gpus
        viol_better = on.effective_violation_ratio < off.effective_violation_ratio
        viol_no_worse = on.effective_violation_ratio <= off.effective_violation_ratio
        return (gpus_better and viol_no_worse) or (viol_better and gpus_no_worse)

    @property
    def mean_gpus_saving(self) -> float:
        """1 − on ÷ off mean GPUs (positive = defrag-on cheaper)."""
        off = self.outcome("off").mean_gpus
        if off <= 0:
            return 0.0
        return 1.0 - self.outcome("on").mean_gpus / off


def _outcome_from_cell(cell: CellResult, threshold: float) -> MigrateOutcome:
    metrics = cell.metrics
    submitted = metrics["submitted"]
    completed = metrics["completed"]
    violated = metrics["slo_violation_ratio"] * completed
    effective = (
        (violated + (submitted - completed)) / submitted if submitted else 0.0
    )
    value = dict(cell.coords)["defrag"]
    return MigrateOutcome(
        defrag="off" if value is None else "on",
        threshold=None if value is None else threshold,
        submitted=submitted,
        completed=completed,
        slo_violation_ratio=metrics["slo_violation_ratio"],
        effective_violation_ratio=effective,
        p95_ms=metrics["p95_ms"],
        gpu_seconds=metrics["gpu_seconds"],
        mean_gpus=metrics["mean_gpus"],
        peak_gpus=metrics["peak_gpus"],
        migrations=metrics.get("migrations", 0),
        migration_aborts=metrics.get("migration_aborts", 0),
        scale_ups=metrics["scale_ups"],
        scale_downs=metrics["scale_downs"],
        nofit_events=metrics["nofit_events"],
    )


def run(
    quick: bool = False,
    seed: int = 42,
    nodes: _t.Sequence[str] | None = None,
    fleet_size: int | None = None,
    threshold: float = DEFRAG_THRESHOLD,
    jobs: int = 1,
) -> MigrateResult:
    """Replay the fragmented fleet with defrag off and on.

    ``quick`` shrinks the fleet/horizon for CI smoke (baked into the
    scenario rather than ``Scenario.quick()``: the tail needs enough horizon
    after the burst for fragmentation to form *and* for migrations to pay
    off — that decayed plateau is the entire point of the comparison).
    """
    if nodes is None:
        nodes = QUICK_MIGRATE_NODES if quick else MIGRATE_NODES
    if fleet_size is None:
        fleet_size = 6 if quick else 10
    burst = QUICK_BURST_PHASE if quick else BURST_PHASE
    tail = QUICK_TAIL_PHASE if quick else TAIL_PHASE
    fleet = fragmented_fleet(fleet_size)
    base = base_scenario(fleet, nodes, seed, burst, tail)
    sweep = sweep_for_defrag(base, threshold)
    sweep_report = run_sweep(sweep, jobs=jobs)
    return MigrateResult(
        nodes=tuple(nodes),
        fleet=fleet,
        seed=seed,
        burst=burst,
        tail=tail,
        threshold=threshold,
        outcomes=tuple(
            _outcome_from_cell(cell, threshold) for cell in sweep_report.cells
        ),
    )


def format_result(result: MigrateResult) -> str:
    lines = [
        "Migrate-bench — background defragmentation on vs off "
        "(fragmented spread fleet)",
        f"  nodes: {', '.join(result.nodes)}   fleet: {len(result.fleet)} functions, "
        f"burst {result.burst[0]:.0f}s@{result.burst[1]:.0f}rps -> "
        f"tail {result.tail[0]:.0f}s@{result.tail[1]:.1f}rps, seed {result.seed}",
        f"  defrag threshold {result.threshold:.2f}   "
        "(eff-viol counts never-served requests as violations)",
        "  defrag  eff-viol%  raw-viol%  served%  mean-GPUs  peak    GPU-s  "
        "migrations  aborts  nofit",
    ]
    for out in result.outcomes:
        served = out.completed / out.submitted if out.submitted else 0.0
        lines.append(
            f"  {out.defrag:<7} {100 * out.effective_violation_ratio:8.2f} "
            f"{100 * out.slo_violation_ratio:10.2f} {100 * served:8.1f} "
            f"{out.mean_gpus:10.2f} {out.peak_gpus:5d} {out.gpu_seconds:8.0f} "
            f"{out.migrations:11d} {out.migration_aborts:7d} {out.nofit_events:6d}"
        )
    try:
        lines.append(
            f"  defrag-on mean-GPU saving: {100 * result.mean_gpus_saving:+.1f}%"
        )
        lines.append(
            "  strict improvement (fewer GPUs at <= eff-violations, or fewer "
            f"violations at <= GPUs): {'YES' if result.improves else 'NO'}"
        )
    except KeyError:
        pass  # a single-cell subset
    return "\n".join(lines)


def report_payload(result: MigrateResult) -> dict:
    """The ``BENCH_migrate.json`` payload for one run."""
    payload: dict[str, _t.Any] = {
        "benchmark": "migrate",
        "nodes": list(result.nodes),
        "fleet_size": len(result.fleet),
        "trace": {
            "seed": result.seed,
            "burst": list(result.burst),
            "tail": list(result.tail),
        },
        "threshold": result.threshold,
        "cells": {
            out.defrag: {
                "slo_violation_ratio": out.slo_violation_ratio,
                "effective_violation_ratio": out.effective_violation_ratio,
                "p95_ms": out.p95_ms,
                "gpu_seconds": out.gpu_seconds,
                "mean_gpus": out.mean_gpus,
                "peak_gpus": out.peak_gpus,
                "migrations": out.migrations,
                "migration_aborts": out.migration_aborts,
                "submitted": out.submitted,
                "completed": out.completed,
                "unserved_requests": out.unserved_requests,
                "scale_ups": out.scale_ups,
                "scale_downs": out.scale_downs,
                "nofit_events": out.nofit_events,
            }
            for out in result.outcomes
        },
    }
    try:
        payload["headline"] = {
            "improves": result.improves,
            "mean_gpus_saving": result.mean_gpus_saving,
            "migrations": result.outcome("on").migrations,
        }
    except KeyError:
        pass
    return payload


def write_migrate_report(path: str, result: MigrateResult) -> dict:
    """Serialize :func:`report_payload` to ``path``; returns the payload."""
    payload = report_payload(result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
