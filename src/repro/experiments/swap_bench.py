"""Swap-bench — the memory-tier headline: swap-aware keep-alive vs both
scale-to-zero and WARM_IDLE-only keep-alive on a long-tail fleet.

The fleet is the serverless long tail in three deliberate tiers:

* **head** — a couple of steady services: the always-on serving baseline;
* **periodic tail** — functions whose clumped arrivals return every minute
  or two (``cold`` trace shape): the swap-in traffic — each quiet gap is
  long enough to park the model, each return is a chance to hide the
  reload behind the fabric;
* **rare tail** — many one-shot functions, each firing a single clump at a
  staggered, deterministic offset: the *capacity pressure*.  Their
  aggregate model size far exceeds cluster GPU memory, so any policy that
  keeps every past visitor GPU-resident crowds the newcomers out.

Three autoscaling policies replay the same arrivals:

* ``hybrid``   — scale-to-zero keep-alive: idle functions retire down to a
  WARM_IDLE readiness reserve; reactivation beyond it pays a **full cold
  start** (seconds of model load);
* ``warmidle`` — WARM_IDLE-only (``scale_to_zero=False``): reserves never
  retire, so every function that ever ran holds a GPU rectangle and GPU
  memory **forever** — late arrivals in the rare tail find the cluster
  full and queue indefinitely;
* ``memtier``  — the swap-aware policy: idle reserves demote to
  ``HOST_RESIDENT`` (zero GPU footprint), reactivation is a **fabric
  swap-in** (milliseconds, contention-dependent) — the GPU-resident /
  host-resident / cold decision triangle.

Violations are counted honestly: a request that is *never served* (its
function could not be placed before the horizon ended) is an SLO violation
by definition — ``effective_violation_ratio`` is (violated + never-served)
over submitted.  The raw completed-only ratio is also reported; comparing
on it alone would reward policies for dropping work.

The acceptance bar is strict domination: ``memtier`` must spend *fewer
GPU-seconds than both* baselines at an *equal-or-better effective
SLO-violation rate*.  ``python -m repro swap-bench [--quick]`` runs the
comparison and writes ``BENCH_swap.json``; the committed long-tail
scenario lives at ``examples/scenarios/longtail_swap.json``.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.scenario import (
    AutoscalerSpec,
    ClusterSpec,
    MeasurementSpec,
    Scenario,
    ScenarioFunction,
    WorkloadSpec,
)
from repro.sweep import CellResult, Sweep, SweepAxis, run_sweep

#: Autoscaling policies compared (registry names; ``hybrid`` = scale-to-zero).
SWAP_POLICIES = ("hybrid", "warmidle", "memtier")

#: Default cluster: homogeneous V100 nodes (16 GB GPU memory each).
SWAP_NODES: tuple[str, ...] = ("V100",) * 6
QUICK_SWAP_NODES: tuple[str, ...] = ("V100", "V100")

#: Host RAM budget per node (MB) for HOST_RESIDENT pods, and fabric GB/s.
HOST_MEMORY_MB = 131072.0
FABRIC_GBPS = 16.0

#: Long-tail model mix, biased toward mid/large weights so the aggregate
#: fleet footprint dwarfs GPU memory (pod ≈ framework + weights + activations).
_TAIL_MODELS = ("bert", "gnmt", "rnnt", "resnet152", "resnext_xlarge", "resnet50")
#: Tail per-function mean RPS cycle: almost-always-idle, clumped arrivals.
_TAIL_RPS = (0.06, 0.10, 0.15, 0.08, 0.12, 0.20)
#: Head functions: steady low-rate traffic that keeps a serving baseline up.
_HEAD: tuple[tuple[str, str, str, float], ...] = (
    ("head-resnet", "resnet50", "steady", 2.0),
    ("head-bert", "bert", "steady", 1.0),
)
#: The ``cold`` trace shape fires this fraction of bins; rare-tier one-shot
#: clumps reuse it to size their single burst to the same per-clump rate.
_COLD_ACTIVE_FRACTION = 0.12

#: Fleet row: (name, model, tier, mean_rps) with tier ∈ steady|periodic|rare.
FleetRow = tuple[str, str, str, float]


def longtail_fleet(
    periodic: int, rare: int, heads: int = len(_HEAD)
) -> tuple[FleetRow, ...]:
    """The tiered fleet as (name, model, tier, mean_rps) rows.

    ``heads`` steady services lead; ``periodic`` returning-clump functions
    and ``rare`` one-shot functions follow, cycling deterministically
    through the model/rate mixes.
    """
    if not 0 < heads <= len(_HEAD):
        raise ValueError(f"heads must be in 1..{len(_HEAD)}, got {heads}")
    if periodic < 1 or rare < 1:
        raise ValueError("fleet needs at least one periodic and one rare function")
    rows: list[FleetRow] = list(_HEAD[:heads])
    for i in range(periodic):
        rows.append(
            (f"tail-{i:03d}", _TAIL_MODELS[i % 6], "periodic", _TAIL_RPS[i % 6])
        )
    for i in range(rare):
        rows.append(
            (f"rare-{i:03d}", _TAIL_MODELS[(i + 3) % 6], "rare", _TAIL_RPS[i % 6])
        )
    return tuple(rows)


def _rare_counts(
    index: int, rare_total: int, bins: int, bin_s: float, rate: float
) -> tuple[int, ...]:
    """One deterministic single-clump trace for rare function ``index``.

    Clumps stagger across the horizon (one bin each, round-robin offset) so
    the rare tier arrives as a steady trickle of first-time visitors rather
    than a thundering herd — the regime where keep-alive reserves from past
    visitors crowd newcomers out.
    """
    counts = [0] * bins
    stride = max(1, (bins - 4) // max(rare_total, 1))
    b = (3 + index * stride) % (bins - 1)
    counts[b] = max(2, int(rate / _COLD_ACTIVE_FRACTION * bin_s))
    return tuple(counts)


def base_scenario(
    fleet: _t.Sequence[FleetRow],
    nodes: _t.Sequence[str],
    seed: int,
    bins: int,
    bin_s: float,
    interval: float,
    host_memory_mb: float = HOST_MEMORY_MB,
    fabric_gbps: float = FABRIC_GBPS,
) -> Scenario:
    """The long-tail base Scenario (``memtier`` policy; the sweep swaps it).

    Every cell replays identical arrivals: head/periodic workloads are
    scenario-seeded synthetic traces, the rare tier's one-shot clumps are
    deterministic ``counts``.  ``host_memory_mb`` is present in *all* cells
    so the only difference between policies is the decision logic, not the
    platform build.  Tail functions start undeployed (``initial_replicas=0``):
    their first clump pays the cold start under every policy; what the
    policies differ on is every activation after that — and whether the
    reserves they hold for it crowd out the rare tier's first clumps.
    """
    rare_total = sum(1 for _, _, tier, _ in fleet if tier == "rare")
    rare_index = 0
    functions = []
    for name, model, tier, rps in fleet:
        if tier == "steady":
            workload = WorkloadSpec(
                kind="synthetic", shape="steady", mean_rps=rps, bins=bins, bin_s=bin_s
            )
        elif tier == "periodic":
            workload = WorkloadSpec(
                kind="synthetic", shape="cold", mean_rps=rps, bins=bins, bin_s=bin_s
            )
        elif tier == "rare":
            workload = WorkloadSpec(
                kind="counts",
                counts=_rare_counts(rare_index, rare_total, bins, bin_s, rps),
                bin_s=bin_s,
                shape="cold",
            )
            rare_index += 1
        else:
            raise ValueError(f"unknown fleet tier {tier!r} for function {name!r}")
        functions.append(
            ScenarioFunction(
                name=name,
                model=model,
                model_sharing=False,
                initial_replicas=1 if tier == "steady" else 0,
                workload=workload,
            )
        )
    return Scenario(
        name="longtail-swap",
        seed=seed,
        description=(
            "Long-tail fleet whose aggregate model size exceeds cluster GPU "
            "memory: the memory-tier (host-resident swap) headline scenario."
        ),
        cluster=ClusterSpec(
            nodes=tuple(nodes),
            host_memory_mb=host_memory_mb,
            fabric_gbps=fabric_gbps,
        ),
        functions=tuple(functions),
        autoscaler=AutoscalerSpec(policy="memtier", interval=interval),
        measurement=MeasurementSpec(drain_s=2.0),
    )


def sweep_for_policies(base: Scenario, policies: _t.Sequence[str]) -> Sweep:
    """One autoscaler axis over the shared long-tail base scenario."""
    return Sweep(
        name="swap-keepalive",
        base=base,
        axes=(SweepAxis(axis="autoscaler", values=tuple(policies)),),
        description=(
            "Swap-aware keep-alive vs scale-to-zero and WARM_IDLE-only on "
            "the long-tail fleet"
        ),
    )


@dataclasses.dataclass(frozen=True, slots=True)
class SwapOutcome:
    """Replay metrics of one keep-alive policy over the shared trace set."""

    policy: str
    submitted: int
    completed: int
    slo_violation_ratio: float
    effective_violation_ratio: float
    p95_ms: float
    gpu_seconds: float
    mean_gpus: float
    peak_gpus: int
    cold_hit_requests: int
    cold_wait_ms_mean: float
    swap_hit_requests: int
    swap_wait_ms_mean: float
    swap_promotions: int
    demotions: int
    host_evictions: int
    scale_ups: int
    scale_downs: int
    nofit_events: int
    prewarms: int

    @property
    def unserved_requests(self) -> int:
        return self.submitted - self.completed


@dataclasses.dataclass(frozen=True, slots=True)
class SwapResult:
    """All policies' outcomes plus the fleet/cluster metadata."""

    nodes: tuple[str, ...]
    fleet: tuple[FleetRow, ...]
    seed: int
    bins: int
    bin_s: float
    host_memory_mb: float
    fabric_gbps: float
    outcomes: tuple[SwapOutcome, ...]

    def outcome(self, policy: str) -> SwapOutcome:
        for out in self.outcomes:
            if out.policy == policy:
                return out
        raise KeyError(f"no outcome for policy {policy!r}")

    @property
    def dominates(self) -> bool:
        """memtier strictly cheaper in GPU-seconds than *both* baselines at
        an equal-or-better effective SLO-violation rate — the acceptance
        bar.  Effective counts never-served requests as violations, so a
        baseline cannot win by leaving the rare tail unserved."""
        mem = self.outcome("memtier")
        others = [self.outcome(p) for p in ("hybrid", "warmidle")]
        return all(
            mem.gpu_seconds < other.gpu_seconds
            and mem.effective_violation_ratio <= other.effective_violation_ratio
            for other in others
        )

    def gpu_seconds_saving(self, baseline: str) -> float:
        """1 − memtier ÷ baseline GPU-seconds (positive = memtier cheaper)."""
        base = self.outcome(baseline).gpu_seconds
        if base <= 0:
            return 0.0
        return 1.0 - self.outcome("memtier").gpu_seconds / base


def _outcome_from_cell(cell: CellResult) -> SwapOutcome:
    metrics = cell.metrics
    submitted = metrics["submitted"]
    completed = metrics["completed"]
    violated = metrics["slo_violation_ratio"] * completed
    effective = (
        (violated + (submitted - completed)) / submitted if submitted else 0.0
    )
    return SwapOutcome(
        policy=dict(cell.coords)["autoscaler"],
        submitted=submitted,
        completed=completed,
        slo_violation_ratio=metrics["slo_violation_ratio"],
        effective_violation_ratio=effective,
        p95_ms=metrics["p95_ms"],
        gpu_seconds=metrics["gpu_seconds"],
        mean_gpus=metrics["mean_gpus"],
        peak_gpus=metrics["peak_gpus"],
        cold_hit_requests=metrics["cold_hit_requests"],
        cold_wait_ms_mean=metrics["cold_wait_ms_mean"],
        swap_hit_requests=metrics.get("swap_hit_requests", 0),
        swap_wait_ms_mean=metrics.get("swap_wait_ms_mean", 0.0),
        swap_promotions=metrics.get("swap_promotions", 0),
        demotions=metrics.get("demotions", 0),
        host_evictions=metrics.get("host_evictions", 0),
        scale_ups=metrics["scale_ups"],
        scale_downs=metrics["scale_downs"],
        nofit_events=metrics["nofit_events"],
        prewarms=metrics["prewarms"],
    )


def run(
    quick: bool = False,
    seed: int = 42,
    nodes: _t.Sequence[str] | None = None,
    policies: _t.Sequence[str] | None = None,
    periodic: int | None = None,
    rare: int | None = None,
    bins: int | None = None,
    bin_s: float | None = None,
    jobs: int = 1,
) -> SwapResult:
    """Replay the long-tail fleet under each keep-alive policy.

    ``quick`` shrinks the fleet/horizon for CI smoke (the workload is baked
    into the scenario rather than using ``Scenario.quick()``, because the
    tail needs enough horizon for demoted functions to *come back* — that
    return trip is the entire point of the comparison).
    """
    if nodes is None:
        nodes = QUICK_SWAP_NODES if quick else SWAP_NODES
    if policies is None:
        policies = SWAP_POLICIES
    for policy in policies:
        if policy not in SWAP_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {SWAP_POLICIES}")
    if periodic is None:
        periodic = 4 if quick else 10
    if rare is None:
        rare = 12 if quick else 200
    if bins is None:
        bins = 18 if quick else 72
    if bin_s is None:
        bin_s = 10.0
    interval = 1.0

    fleet = longtail_fleet(periodic, rare, heads=1 if quick else 2)
    base = base_scenario(fleet, nodes, seed, bins, bin_s, interval)
    sweep = sweep_for_policies(base, policies)
    sweep_report = run_sweep(sweep, jobs=jobs)
    return SwapResult(
        nodes=tuple(nodes),
        fleet=fleet,
        seed=seed,
        bins=bins,
        bin_s=bin_s,
        host_memory_mb=base.cluster.host_memory_mb or 0.0,
        fabric_gbps=base.cluster.fabric_gbps,
        outcomes=tuple(_outcome_from_cell(cell) for cell in sweep_report.cells),
    )


def format_result(result: SwapResult) -> str:
    from repro.models import MODEL_ZOO

    total_weights = sum(MODEL_ZOO[m].memory.weights_mb for _, m, _, _ in result.fleet)
    lines = [
        "Swap-bench — swap-aware keep-alive vs scale-to-zero and WARM_IDLE-only",
        f"  nodes: {', '.join(result.nodes)}   fleet: {len(result.fleet)} functions "
        f"({total_weights / 1024.0:.1f} GB aggregate weights), "
        f"trace {result.bins}x{result.bin_s:.0f}s bins, seed {result.seed}",
        f"  host RAM {result.host_memory_mb / 1024.0:.0f} GB/node, "
        f"fabric {result.fabric_gbps:.0f} GB/s   "
        "(eff-viol counts never-served requests as violations)",
        "  policy     eff-viol%  raw-viol%  served%    GPU-s  cold-hits  "
        "swap-hits  swap-wait(ms)  demote/swapin/evict",
    ]
    for out in result.outcomes:
        served = out.completed / out.submitted if out.submitted else 0.0
        lines.append(
            f"  {out.policy:<10} {100 * out.effective_violation_ratio:8.2f} "
            f"{100 * out.slo_violation_ratio:10.2f} {100 * served:8.1f} "
            f"{out.gpu_seconds:8.0f} {out.cold_hit_requests:10d} "
            f"{out.swap_hit_requests:10d} {out.swap_wait_ms_mean:13.1f}  "
            f"{out.demotions}/{out.swap_promotions}/{out.host_evictions}"
        )
    try:
        lines.append(
            f"  memtier GPU-s saving: {100 * result.gpu_seconds_saving('hybrid'):+.1f}% "
            f"vs scale-to-zero, {100 * result.gpu_seconds_saving('warmidle'):+.1f}% "
            "vs WARM_IDLE-only"
        )
        lines.append(
            f"  strict domination (cheaper GPU-s, <= eff-violations vs both): "
            f"{'YES' if result.dominates else 'NO'}"
        )
    except KeyError:
        pass  # a policy subset without all three
    return "\n".join(lines)


def report_payload(result: SwapResult) -> dict:
    """The ``BENCH_swap.json`` payload for one run."""
    payload: dict[str, _t.Any] = {
        "benchmark": "swap",
        "nodes": list(result.nodes),
        "fleet_size": len(result.fleet),
        "fleet_tiers": {
            tier: sum(1 for _, _, t, _ in result.fleet if t == tier)
            for tier in ("steady", "periodic", "rare")
        },
        "trace": {"seed": result.seed, "bins": result.bins, "bin_s": result.bin_s},
        "host_memory_mb": result.host_memory_mb,
        "fabric_gbps": result.fabric_gbps,
        "policies": {
            out.policy: {
                "slo_violation_ratio": out.slo_violation_ratio,
                "effective_violation_ratio": out.effective_violation_ratio,
                "p95_ms": out.p95_ms,
                "gpu_seconds": out.gpu_seconds,
                "mean_gpus": out.mean_gpus,
                "peak_gpus": out.peak_gpus,
                "cold_hit_requests": out.cold_hit_requests,
                "cold_wait_ms_mean": out.cold_wait_ms_mean,
                "swap_hit_requests": out.swap_hit_requests,
                "swap_wait_ms_mean": out.swap_wait_ms_mean,
                "swap_promotions": out.swap_promotions,
                "demotions": out.demotions,
                "host_evictions": out.host_evictions,
                "submitted": out.submitted,
                "completed": out.completed,
                "unserved_requests": out.unserved_requests,
                "scale_ups": out.scale_ups,
                "scale_downs": out.scale_downs,
                "nofit_events": out.nofit_events,
                "prewarms": out.prewarms,
            }
            for out in result.outcomes
        },
    }
    try:
        payload["headline"] = {
            "dominates": result.dominates,
            "gpu_seconds_saving_vs_scale_to_zero": result.gpu_seconds_saving("hybrid"),
            "gpu_seconds_saving_vs_warmidle": result.gpu_seconds_saving("warmidle"),
        }
    except KeyError:
        pass
    return payload


def write_swap_report(path: str, result: SwapResult) -> dict:
    """Serialize :func:`report_payload` to ``path``; returns the payload."""
    payload = report_payload(result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
