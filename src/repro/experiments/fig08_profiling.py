"""Fig. 8 — FaST-Profiler throughput grids for the four MLPerf models.

For each model, throughput is measured at every point of the paper's
profiling grid (temporal 20..100% × spatial 6..100%).  The two shapes to
reproduce: throughput grows *proportionally* with the time quota, and
*saturates* along the SM axis at a model-dependent knee (larger models
saturate later).
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.faas.function import FunctionSpec
from repro.profiler import ConfigurationServer, FaSTProfiler, ProfilePoint

#: The models the paper profiles, with their Fig. 8 panel titles.
FIG8_MODELS: tuple[tuple[str, str], ...] = (
    ("resnet50", "vision / ResNet (98MiB)"),
    ("rnnt", "speech_recognition / RNNT (519MiB)"),
    ("bert", "reasoning / BERT (650MiB)"),
    ("gnmt", "translation / GNMT (758MiB)"),
)


@dataclasses.dataclass(frozen=True, slots=True)
class Fig08Result:
    #: model -> list of profile points over the grid.
    grids: dict[str, list[ProfilePoint]]
    spatial: tuple[float, ...]
    temporal: tuple[float, ...]

    def throughput(self, model: str, sm: float, quota: float) -> float:
        for point in self.grids[model]:
            if point.sm_partition == sm and point.quota == quota:
                return point.throughput
        raise KeyError((model, sm, quota))


def run(
    models: _t.Sequence[tuple[str, str]] = FIG8_MODELS,
    trial_duration: float = 12.0,
    quick: bool = False,
    seed: int = 7,
) -> Fig08Result:
    if quick:
        trial_duration = 5.0
        server = ConfigurationServer(spatial=(6, 24, 100), temporal=(0.4, 1.0))
    else:
        server = ConfigurationServer()
    profiler = FaSTProfiler(
        config_server=server, trial_duration=trial_duration, warmup=1.0,
        concurrency=8, seed=seed,
    )
    grids: dict[str, list[ProfilePoint]] = {}
    for model_name, _title in models:
        function = FunctionSpec.from_model(model_name, model_name)
        grids[model_name] = profiler.profile_function(function)
    return Fig08Result(grids=grids, spatial=server.spatial, temporal=server.temporal)


def format_result(result: Fig08Result) -> str:
    titles = dict(FIG8_MODELS)
    lines = ["Fig. 8 — function throughput (req/s) from FaST-Profiler"]
    for model, points in result.grids.items():
        lines.append(f"\n  {titles.get(model, model)}")
        header = "    SM\\Q " + "".join(f"{q:>8.1f}" for q in result.temporal)
        lines.append(header)
        for sm in result.spatial:
            row = [p for p in points if p.sm_partition == sm]
            row.sort(key=lambda p: p.quota)
            lines.append(
                f"    {sm:>4.0f}%" + "".join(f"{p.throughput:8.1f}" for p in row)
            )
    return "\n".join(lines)
