"""Fig. 15 (extension) — predictive pre-warming vs reactive autoscaling.

The PR 2 cluster replay showed the reactive Algorithm-1 scaler leaves
flash-crowd and cold-tail functions with heavy SLO violations: by the time
``ΔRPS`` goes positive, every queued request eats the full cold start plus
the capacity ramp.  This experiment replays the fig14 **cold/bursty** trace
subset over the same heterogeneous cluster under three autoscaling modes:

* ``reactive``    — the paper's Algorithm 1 alone (degenerate controller);
* ``predictive``  — the hybrid forecaster (Holt-EWMA + Azure-style
  histogram keep-alive): WARM_IDLE spares promote instantly on pending
  requests, clumps are pre-warmed ahead of their predicted arrival, and
  idle functions scale to zero past the keep-alive tail;
* ``oracle``      — forecasters that read the replayed trace itself (the
  upper bound on what prediction can buy).

Every mode replays the *same* seeded trace set, so differences in
SLO-violation rate, cold-start exposure, and GPU-seconds are attributable
to the autoscaling policy alone.  ``python -m repro prewarm-bench`` runs
this and writes ``BENCH_prewarm.json``; the acceptance bar is the
predictive policy cutting the cold-trace SLO-violation rate by ≥2× vs the
reactive baseline at ≤15% extra GPU-seconds.

Two deliberate defaults: the replay horizon is **36 bins** (vs fig14's 24)
because prediction needs repetition — a horizon with a single clump per
cold function measures only the unpredictable first-ever cold start, not
the steady state any histogram policy converges to; and the cluster gets a
**fifth node** so the reactive-vs-predictive comparison measures control
policy, not hard capacity exhaustion (on a saturated cluster every policy
degenerates to "whoever grabbed space first wins").
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t

from repro.faas.traces import TraceSet, load_trace_file, synthesize_trace_set
from repro.experiments.fig14_cluster import (
    CLUSTER_FLEET,
    DEFAULT_WARMUP_S,
    QUICK_NODES,
    QUICK_WARMUP_S,
)
from repro.scenario import (
    AutoscalerSpec,
    ClusterSpec,
    MeasurementSpec,
    Scenario,
    ScenarioFunction,
    WorkloadSpec,
)
from repro.sweep import CellResult, Sweep, SweepAxis, run_sweep

#: The fig14 cold/bursty subset — the traffic shapes where cold starts bite.
PREWARM_FLEET: tuple[tuple[str, str, str, float], ...] = tuple(
    row for row in CLUSTER_FLEET if row[2] in ("cold", "bursty")
)

#: Autoscaling modes compared by this experiment.
SCALING_POLICIES = ("reactive", "predictive", "oracle")

#: Default node set: fig14's heterogeneous cluster plus one V100 of headroom.
PREWARM_NODES: tuple[str, ...] = ("V100", "V100", "V100", "A100", "T4")


@dataclasses.dataclass(frozen=True, slots=True)
class PrewarmOutcome:
    """Replay metrics of one autoscaling mode over the shared trace set."""

    policy: str
    submitted: int
    completed: int
    slo_violation_ratio: float
    per_function_violations: dict[str, float]
    p95_ms: float
    cold_hit_requests: int
    cold_wait_ms_mean: float
    queue_wait_ms_mean: float
    pod_cold_starts: int
    prewarms: int
    promotions: int
    retirements: int
    gpu_seconds: float
    mean_gpus: float
    peak_gpus: int
    scale_ups: int
    scale_downs: int
    nofit_events: int


@dataclasses.dataclass(frozen=True, slots=True)
class PrewarmResult:
    """All modes' outcomes plus the replayed-trace metadata."""

    nodes: tuple[str, ...]
    functions: tuple[tuple[str, str, str, float], ...]
    trace_seed: int
    bins: int
    bin_s: float
    duration: float
    outcomes: tuple[PrewarmOutcome, ...]

    def outcome(self, policy: str) -> PrewarmOutcome:
        for out in self.outcomes:
            if out.policy == policy:
                return out
        raise KeyError(f"no outcome for policy {policy!r}")

    @property
    def violation_improvement(self) -> float:
        """Reactive ÷ predictive SLO-violation rate (≥2 is the target)."""
        predictive = self.outcome("predictive").slo_violation_ratio
        reactive = self.outcome("reactive").slo_violation_ratio
        if predictive <= 0:
            return float("inf") if reactive > 0 else 1.0
        return reactive / predictive

    @property
    def gpu_seconds_overhead(self) -> float:
        """Predictive ÷ reactive GPU-seconds − 1 (≤0.15 is the target)."""
        reactive = self.outcome("reactive").gpu_seconds
        if reactive <= 0:
            return 0.0
        return self.outcome("predictive").gpu_seconds / reactive - 1.0


#: fig15 mode → the autoscaler policy its Scenario declares.
_AUTOSCALE_POLICY = {"reactive": "reactive", "predictive": "hybrid", "oracle": "oracle"}
#: ...and back: sweep-cell autoscaler coordinate → fig15 mode name.
_MODE_FOR_POLICY = {v: k for k, v in _AUTOSCALE_POLICY.items()}


def sweep_for_policies(
    trace_set: TraceSet,
    nodes: _t.Sequence[str],
    policies: _t.Sequence[str],
    seed: int,
    interval: float,
    sample_dt: float = 1.0,
    warmup_s: float = 0.0,
) -> Sweep:
    """The declarative form of the whole comparison: one autoscaler axis.

    Every cell embeds the *same* per-bin counts; only the autoscaler policy
    differs (``policies`` are fig15 mode names — reactive / predictive /
    oracle — mapped onto their controller policies).  The oracle cell's
    per-function trace forecasters are built by the scenario runner from
    those counts (``oracle_lead_s`` seconds of lead).  All cells start from
    the same deployed state — one warm pod per function — which the
    predictive modes may scale to zero.
    """
    functions = tuple(
        ScenarioFunction(
            name=trace.function,
            model=trace.model,
            model_sharing=True,
            workload=WorkloadSpec(
                kind="counts", counts=trace.counts, bin_s=trace.bin_s, shape=trace.shape
            ),
        )
        for trace in trace_set.traces
    )
    base = Scenario(
        name="fig15",
        seed=seed,
        cluster=ClusterSpec(nodes=tuple(nodes)),
        functions=functions,
        autoscaler=AutoscalerSpec(
            policy="reactive",
            interval=interval,
            headroom=1.3,
            scale_down_cooldown=8.0,
            down_hysteresis=0.3,
            placement="binpack",
            oracle_lead_s=4.0,
        ),
        measurement=MeasurementSpec(warmup_s=warmup_s, drain_s=2.0, sample_dt=sample_dt),
    )
    return Sweep(
        name="fig15-autoscaler",
        base=base,
        axes=(
            SweepAxis(
                axis="autoscaler",
                values=tuple(_AUTOSCALE_POLICY[p] for p in policies),
            ),
        ),
        description="Fig. 15: predictive pre-warming vs reactive autoscaling",
    )


def scenario_for_policy(
    trace_set: TraceSet,
    nodes: _t.Sequence[str],
    policy: str,
    seed: int,
    interval: float,
    sample_dt: float = 1.0,
) -> Scenario:
    """One mode's fully materialized replay Scenario (a single sweep cell)."""
    sweep = sweep_for_policies(trace_set, nodes, [policy], seed, interval, sample_dt)
    return sweep.cells()[0].scenario


def _outcome_from_cell(cell: CellResult) -> PrewarmOutcome:
    """Reduce one executed sweep cell to this figure's per-mode metrics."""
    metrics = cell.metrics
    return PrewarmOutcome(
        policy=_MODE_FOR_POLICY[dict(cell.coords)["autoscaler"]],
        submitted=metrics["submitted"],
        completed=metrics["completed"],
        slo_violation_ratio=metrics["slo_violation_ratio"],
        per_function_violations=metrics["per_function_violations"],
        p95_ms=metrics["p95_ms"],
        cold_hit_requests=metrics["cold_hit_requests"],
        cold_wait_ms_mean=metrics["cold_wait_ms_mean"],
        queue_wait_ms_mean=metrics["queue_wait_ms_mean"],
        pod_cold_starts=metrics["scale_ups"]
        + metrics["initial_pods"]  # pre-placed pods
        + metrics["prewarms"],
        prewarms=metrics["prewarms"],
        promotions=metrics["promotions"],
        retirements=metrics["retirements"],
        gpu_seconds=metrics["gpu_seconds"],
        mean_gpus=metrics["mean_gpus"],
        peak_gpus=metrics["peak_gpus"],
        scale_ups=metrics["scale_ups"],
        scale_downs=metrics["scale_downs"],
        nofit_events=metrics["nofit_events"],
    )


def run(
    quick: bool = False,
    seed: int = 42,
    nodes: _t.Sequence[str] | None = None,
    policies: _t.Sequence[str] | None = None,
    bins: int | None = None,
    bin_s: float | None = None,
    fleet: _t.Sequence[tuple[str, str, str, float]] | None = None,
    trace_file: str | None = None,
    jobs: int = 1,
    warmup_s: float | None = None,
) -> PrewarmResult:
    """Replay the cold/bursty trace set under each autoscaling mode.

    ``trace_file`` replays a committed trace file (see
    :func:`repro.faas.traces.load_trace_file`) instead of synthesizing one.
    ``jobs`` fans the per-mode cells across the experiment process pool
    (bit-identical to serial); ``warmup_s`` opens the measured window after
    the initial ramp — ``None`` (the default) honours the measurement
    warm-up (quick/full defaults from :mod:`repro.experiments.fig14_cluster`)
    so steady-state metrics exclude the cold ramp; pass ``0.0`` to measure
    from ``t=0``.
    """
    if warmup_s is None:
        warmup_s = QUICK_WARMUP_S if quick else DEFAULT_WARMUP_S
    if nodes is None:
        nodes = QUICK_NODES if quick else PREWARM_NODES
    if policies is None:
        policies = SCALING_POLICIES
    for policy in policies:
        if policy not in SCALING_POLICIES:
            raise ValueError(f"unknown policy {policy!r}; known: {SCALING_POLICIES}")
    if trace_file is not None:
        trace_set = load_trace_file(trace_file)
        fleet = tuple(
            (t.function, t.model, t.shape, round(t.mean_rps, 3)) for t in trace_set.traces
        )
        bins = max(len(t.counts) for t in trace_set.traces)
        bin_s = trace_set.traces[0].bin_s
        if trace_set.seed is not None:
            seed = trace_set.seed
    else:
        if fleet is None:
            fleet = PREWARM_FLEET[:3] if quick else PREWARM_FLEET
        if bins is None:
            bins = 10 if quick else 36
        if bin_s is None:
            bin_s = 3.0 if quick else 10.0
        trace_set = synthesize_trace_set(list(fleet), bins=bins, bin_s=bin_s, seed=seed)
    interval = 0.5 if quick else 1.0

    sweep = sweep_for_policies(trace_set, nodes, policies, seed, interval, warmup_s=warmup_s)
    sweep_report = run_sweep(sweep, jobs=jobs)
    outcomes = tuple(_outcome_from_cell(cell) for cell in sweep_report.cells)
    return PrewarmResult(
        nodes=tuple(nodes),
        functions=tuple(fleet),
        trace_seed=seed,
        bins=bins,
        bin_s=bin_s,
        duration=trace_set.duration,
        outcomes=outcomes,
    )


def format_result(result: PrewarmResult) -> str:
    lines = [
        "Fig. 15 — predictive pre-warming vs reactive autoscaling (cold/bursty traces)",
        f"  nodes: {', '.join(result.nodes)}   fleet: {len(result.functions)} functions, "
        f"trace {result.bins}x{result.bin_s:.0f}s bins, seed {result.trace_seed}",
        "  policy      SLO-viol%  p95(ms)  cold-hits  cold-wait(ms)  GPU-s   "
        "prewarm/promote/retire",
    ]
    for out in result.outcomes:
        lines.append(
            f"  {out.policy:<11} {100 * out.slo_violation_ratio:8.2f} {out.p95_ms:8.1f} "
            f"{out.cold_hit_requests:10d} {out.cold_wait_ms_mean:13.1f} {out.gpu_seconds:7.0f}  "
            f"{out.prewarms}/{out.promotions}/{out.retirements}"
        )
    try:
        improvement = result.violation_improvement
        overhead = result.gpu_seconds_overhead
        lines.append(
            f"  predictive vs reactive: {improvement:.1f}x fewer SLO violations at "
            f"{100 * overhead:+.1f}% GPU-seconds (targets: >=2x, <=+15%)"
        )
    except KeyError:
        pass  # a policy subset without both reactive and predictive
    for out in result.outcomes:
        worst = max(out.per_function_violations.items(), key=lambda kv: kv[1])
        lines.append(
            f"  [{out.policy}] completed {out.completed}/{out.submitted}, "
            f"worst function {worst[0]} at {100 * worst[1]:.2f}% violations"
        )
    return "\n".join(lines)


def report_payload(result: PrewarmResult) -> dict:
    """The ``BENCH_prewarm.json`` payload for one run."""
    payload: dict[str, _t.Any] = {
        "benchmark": "prewarm",
        "nodes": list(result.nodes),
        "functions": [
            {"function": f, "model": m, "shape": s, "mean_rps": r}
            for f, m, s, r in result.functions
        ],
        "trace": {"seed": result.trace_seed, "bins": result.bins, "bin_s": result.bin_s},
        "duration_s": result.duration,
        "policies": {
            out.policy: {
                "slo_violation_ratio": out.slo_violation_ratio,
                "per_function_violations": out.per_function_violations,
                "p95_ms": out.p95_ms,
                "cold_hit_requests": out.cold_hit_requests,
                "cold_wait_ms_mean": out.cold_wait_ms_mean,
                "queue_wait_ms_mean": out.queue_wait_ms_mean,
                "pod_cold_starts": out.pod_cold_starts,
                "prewarms": out.prewarms,
                "promotions": out.promotions,
                "retirements": out.retirements,
                "gpu_seconds": out.gpu_seconds,
                "mean_gpus": out.mean_gpus,
                "peak_gpus": out.peak_gpus,
                "submitted": out.submitted,
                "completed": out.completed,
                "scale_ups": out.scale_ups,
                "scale_downs": out.scale_downs,
                "nofit_events": out.nofit_events,
            }
            for out in result.outcomes
        },
    }
    try:
        payload["headline"] = {
            "violation_improvement_vs_reactive": result.violation_improvement,
            "gpu_seconds_overhead_vs_reactive": result.gpu_seconds_overhead,
        }
    except KeyError:
        pass
    return payload


def write_prewarm_report(path: str, result: PrewarmResult) -> dict:
    """Serialize :func:`report_payload` to ``path``; returns the payload."""
    payload = report_payload(result)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload
