"""Fig. 11 — GPU utilization/occupancy under the two scheduling mechanisms.

Workload: 4 ResNet pods at (12% SMs, 40% quota), 2 RNNT pods at (24%, 40%),
2 BERT pods at (50%, 60%), on a 4-GPU cluster.

* Time sharing (KubeShare-like) has no spatial dimension: the quota packer
  needs **all four GPUs** (Σ quota = 3.6), each ending up with low
  utilization and occupancy (paper: 28.9-47.5% util, 3.1-9.4% occ).
* FaST-Scheduler packs the eight 2D rectangles onto **one GPU**
  (Σ area = 98.4%), concentrating load (paper: 88.64% util, 25.3% occ).
"""

from __future__ import annotations

import dataclasses

from repro.faas.workload import PoissonRate
from repro.faas.loadgen import OpenLoopGenerator
from repro.models import get_model
from repro.platform import FaSTGShare

#: (function, model, pods, sm%, quota) — the paper's Fig. 11 deployment.
FIG11_PODS: tuple[tuple[str, str, int, float, float], ...] = (
    ("resnet", "resnet50", 4, 12.0, 0.4),
    ("rnnt", "rnnt", 2, 24.0, 0.4),
    ("bert", "bert", 2, 50.0, 0.6),
)


@dataclasses.dataclass(frozen=True, slots=True)
class Fig11Side:
    mechanism: str
    node_utilization: list[float]  # per GPU, %
    node_occupancy: list[float]    # per GPU, %
    gpus_used: int
    total_throughput: float


@dataclasses.dataclass(frozen=True, slots=True)
class Fig11Result:
    time_sharing: Fig11Side
    fast_scheduler: Fig11Side

    @property
    def utilization_increase(self) -> float:
        """Active-GPU util ratio − 1 (the paper's "1.34x increase")."""
        ts = [u for u in self.time_sharing.node_utilization if u > 0.5]
        fast = [u for u in self.fast_scheduler.node_utilization if u > 0.5]
        if not ts or not fast:
            return 0.0
        return (sum(fast) / len(fast)) / (sum(ts) / len(ts)) - 1.0

    @property
    def occupancy_increase(self) -> float:
        """Active-GPU occupancy ratio − 1 (the paper's "3.13x increase")."""
        ts_util = self.time_sharing.node_utilization
        ts = [o for u, o in zip(ts_util, self.time_sharing.node_occupancy) if u > 0.5]
        fast_util = self.fast_scheduler.node_utilization
        fast = [o for u, o in zip(fast_util, self.fast_scheduler.node_occupancy) if u > 0.5]
        if not ts or not fast:
            return 0.0
        return (sum(fast) / len(fast)) / (sum(ts) / len(ts)) - 1.0


def _drive(platform: FaSTGShare, duration: float, load_scale: float) -> Fig11Side:
    """Deploy the Fig. 11 pod set on the given platform and saturate it."""
    for function, model_name, pods, sm, quota in FIG11_PODS:
        platform.register_function(function, model=model_name)
    # Deploy largest-quota first so the 1D packer reproduces a feasible
    # 4-GPU layout (first-fit-decreasing).
    for function, model_name, pods, sm, quota in sorted(FIG11_PODS, key=lambda r: -r[4]):
        platform.deploy(function, configs=[(sm, quota)] * pods)
    platform.wait_ready()
    engine = platform.engine
    t0 = engine.now
    platform.cluster.reset_metrics()
    for function, model_name, pods, sm, quota in FIG11_PODS:
        capacity = pods * get_model(model_name).expected_rate(sm, quota)
        workload = PoissonRate(rps=load_scale * capacity, duration=duration)
        OpenLoopGenerator(engine, platform.gateway, function, workload)
    engine.run(until=t0 + duration)
    metrics = platform.cluster.node_metrics()
    window = platform.gateway.log.in_window(t0, engine.now)
    nodes_hosting = {pod.node_name for pod in platform.cluster.pods.values()}
    return Fig11Side(
        mechanism=platform.config.sharing,
        node_utilization=[util for _, util, _ in metrics],
        node_occupancy=[occ for _, _, occ in metrics],
        gpus_used=len(nodes_hosting),
        total_throughput=window.throughput(duration),
    )


def run(duration: float = 40.0, seed: int = 42, quick: bool = False,
        load_scale: float = 0.62) -> Fig11Result:
    """``load_scale`` scales offered RPS relative to each pod's quota-bound
    capacity.  0.62 reproduces the paper's time-sharing utilization band
    (28.9-47.5% per GPU); both mechanisms see the same absolute load."""
    if quick:
        duration = 10.0
    timeshare = FaSTGShare.build(nodes=4, sharing="timeshare", seed=seed)
    fast = FaSTGShare.build(nodes=4, sharing="fast", seed=seed)
    return Fig11Result(
        time_sharing=_drive(timeshare, duration, load_scale),
        fast_scheduler=_drive(fast, duration, load_scale),
    )


def format_result(result: Fig11Result) -> str:
    lines = ["Fig. 11 — per-GPU utilization / SM occupancy by scheduling mechanism"]
    for side in (result.time_sharing, result.fast_scheduler):
        label = "time sharing" if side.mechanism == "timeshare" else "FaST-Scheduler"
        lines.append(f"  {label} (GPUs used: {side.gpus_used}, "
                     f"throughput {side.total_throughput:.1f} req/s)")
        for i, (util, occ) in enumerate(zip(side.node_utilization, side.node_occupancy)):
            lines.append(f"    GPU {i}: util {util:5.1f}%   SM occ {occ:5.2f}%")
    lines.append(
        f"  active-GPU increases: utilization +{result.utilization_increase:.2f}x, "
        f"occupancy +{result.occupancy_increase:.2f}x "
        "(paper: +1.34x and +3.13x)"
    )
    return "\n".join(lines)
