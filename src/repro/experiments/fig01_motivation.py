"""Fig. 1 — motivation: GPU utilization and SM occupancy under extreme load.

(a) Kubernetes device plugin: one pod owns the whole V100; even saturated,
    utilization stays moderate (host gaps) and SM occupancy tiny (a ResNet
    kernel cannot fill 80 SMs).
(b) Time sharing (KubeShare-style): eight over-subscribed full-GPU pods keep
    utilization above ~95%, yet SM occupancy stays below 10% — kernels
    serialise, so at any instant only one model's kernels are resident.
"""

from __future__ import annotations

import dataclasses

from repro.platform import FaSTGShare


@dataclasses.dataclass(frozen=True, slots=True)
class MechanismResult:
    mechanism: str
    pods: int
    throughput: float
    gpu_utilization: float
    sm_occupancy: float


@dataclasses.dataclass(frozen=True, slots=True)
class Fig01Result:
    device_plugin: MechanismResult
    time_sharing: MechanismResult


def _saturate(platform: FaSTGShare, pods: int, duration: float) -> MechanismResult:
    platform.register_function("classify", model="resnet50")
    platform.deploy("classify", configs=[(100, 1.0)] * pods, node=0)
    report = platform.run_closed_loop("classify", concurrency=max(4, 2 * pods), duration=duration)
    (_, util, occ), = report.node_metrics
    return MechanismResult(
        mechanism=platform.config.sharing,
        pods=pods,
        throughput=report.throughput,
        gpu_utilization=util,
        sm_occupancy=occ,
    )


def run(duration: float = 30.0, seed: int = 42, quick: bool = False) -> Fig01Result:
    if quick:
        duration = min(duration, 8.0)
    exclusive = FaSTGShare.build(nodes=1, sharing="exclusive", seed=seed)
    plugin = _saturate(exclusive, pods=1, duration=duration)

    racing = FaSTGShare.build(nodes=1, sharing="racing", seed=seed)
    timesharing = _saturate(racing, pods=8, duration=duration)
    return Fig01Result(
        device_plugin=dataclasses.replace(plugin, mechanism="device-plugin"),
        time_sharing=dataclasses.replace(timesharing, mechanism="time-sharing"),
    )


def format_result(result: Fig01Result) -> str:
    lines = ["Fig. 1 — GPU utilization / SM occupancy under extreme workload"]
    for row in (result.device_plugin, result.time_sharing):
        lines.append(
            f"  {row.mechanism:<14} pods={row.pods}  throughput={row.throughput:7.2f} req/s  "
            f"util={row.gpu_utilization:5.1f}%  SM occ={row.sm_occupancy:5.2f}%"
        )
    lines.append(
        "  paper shape: time sharing pushes util >95% while occupancy stays <10%"
    )
    return "\n".join(lines)
