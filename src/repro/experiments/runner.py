"""Parallel experiment harness: fan figures and seed replicates across cores.

``python -m repro`` delegates here.  The harness builds a deterministic task
list (one :class:`ExperimentTask` per figure × replicate), then executes it
either serially or on a :class:`~concurrent.futures.ProcessPoolExecutor`.
Both paths call the *same* module-level :func:`run_task` with the same seeds,
and every simulation derives all randomness from its engine seed, so the
parallel run is bit-identical to the serial one — results differ only in
wall-clock time.

Seeds are derived per task with :func:`derive_task_seed`: replicate 0 keeps
the user's base seed (so ``--jobs 4`` reproduces exactly what the serial CLI
printed before parallelism existed), while replicate ``r > 0`` mixes the
experiment name and replicate index through CRC-32 — deterministic across
processes and Python versions (unlike ``hash()``, which is salted).

The module also hosts the engine micro-benchmark used for the
``BENCH_engine.json`` speedup report (``python -m repro bench``): it times
the production single-timer fluid device against the seed-semantics
:class:`~repro.gpu.reference.ReferenceGPUDevice` on the same churn workload.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
import typing as _t
import zlib
from concurrent.futures import ProcessPoolExecutor

from repro.experiments import (
    ablations,
    fig01_motivation,
    fig08_profiling,
    fig09_isolation,
    fig10_spatial,
    fig11_scheduler,
    fig12_autoscaling,
    fig13_modelsharing,
    fig14_cluster,
    fig15_prewarm,
    headline,
)

#: Figure experiments exposing the uniform ``run(quick=, seed=)`` protocol.
SIMPLE_EXPERIMENTS: dict[str, _t.Any] = {
    "fig01": fig01_motivation,
    "fig08": fig08_profiling,
    "fig09": fig09_isolation,
    "fig10": fig10_spatial,
    "fig11": fig11_scheduler,
    "fig12": fig12_autoscaling,
    "fig13": fig13_modelsharing,
    "fig14": fig14_cluster,
    "fig15": fig15_prewarm,
    "headline": headline,
}


def experiment_names() -> list[str]:
    """Every runnable experiment, in the order ``all`` executes them."""
    return sorted(SIMPLE_EXPERIMENTS) + ["ablations"]


def derive_task_seed(base_seed: int, name: str, replicate: int) -> int:
    """Deterministic per-task seed; replicate 0 preserves the base seed."""
    if replicate == 0:
        return base_seed
    mix = zlib.crc32(f"{name}:{replicate}".encode("utf-8"))
    return (base_seed ^ mix) & 0x7FFFFFFF


@dataclasses.dataclass(frozen=True, slots=True)
class ExperimentTask:
    """One unit of work: a figure at one seed."""

    name: str
    seed: int
    quick: bool = False
    replicate: int = 0


@dataclasses.dataclass(frozen=True, slots=True)
class TaskResult:
    """Formatted output + timing of one completed task."""

    name: str
    seed: int
    replicate: int
    output: str
    elapsed: float


def run_experiment(name: str, quick: bool = False, seed: int = 42) -> str:
    """Run one experiment by name and return its formatted report."""
    if name == "ablations":
        duration = 5.0 if quick else 12.0
        placement = ablations.run_placement_ablation(seed=seed, pods=200)
        tokens = ablations.run_token_ablation(duration=duration, seed=seed)
        priority = ablations.run_priority_ablation(duration=duration, seed=seed)
        return ablations.format_results(placement, tokens, priority)
    module = SIMPLE_EXPERIMENTS[name]
    return module.format_result(module.run(quick=quick, seed=seed))


def run_task(task: ExperimentTask) -> TaskResult:
    """Execute one task (module-level so it pickles into worker processes)."""
    start = time.perf_counter()
    output = run_experiment(task.name, quick=task.quick, seed=task.seed)
    return TaskResult(
        name=task.name,
        seed=task.seed,
        replicate=task.replicate,
        output=output,
        elapsed=time.perf_counter() - start,
    )


def build_tasks(
    names: _t.Sequence[str], *, seed: int = 42, quick: bool = False, replicates: int = 1
) -> list[ExperimentTask]:
    """The deterministic task list the suite executes, in output order."""
    if replicates < 1:
        raise ValueError(f"replicates must be >= 1, got {replicates}")
    return [
        ExperimentTask(name, derive_task_seed(seed, name, r), quick, r)
        for name in names
        for r in range(replicates)
    ]


_TaskT = _t.TypeVar("_TaskT")
_ResultT = _t.TypeVar("_ResultT")


def map_tasks(
    fn: _t.Callable[[_TaskT], _ResultT], tasks: _t.Iterable[_TaskT], *, jobs: int = 1
) -> _t.Iterator[_ResultT]:
    """Order-preserving serial-or-process-pool map — the one pool code path.

    Every parallel driver in the repo (the figure suite, scenario sweeps)
    routes through here: ``jobs <= 1`` maps lazily in-process (consumers
    print incrementally), ``jobs > 1`` fans ``fn`` across a
    ``ProcessPoolExecutor``.  ``fn`` and each task must be picklable, and —
    because every simulation derives all randomness from seeds carried *in*
    the task — results are bit-identical between the two paths; they differ
    only in wall-clock time.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield fn(task)
        return
    with ProcessPoolExecutor(max_workers=min(jobs, len(tasks))) as pool:
        yield from pool.map(fn, tasks)


def iter_suite(
    names: _t.Sequence[str],
    *,
    seed: int = 42,
    quick: bool = False,
    jobs: int = 1,
    replicates: int = 1,
) -> _t.Iterator[TaskResult]:
    """Yield ``names`` × ``replicates`` task results as they become ready.

    Results arrive in task order regardless of completion order, and are
    bit-identical between ``jobs=1`` and ``jobs=N`` (same function, same
    derived seeds, independent engines).  Serially, each result is yielded
    as soon as its task finishes, so CLI consumers print incrementally.
    """
    tasks = build_tasks(names, seed=seed, quick=quick, replicates=replicates)
    yield from map_tasks(run_task, tasks, jobs=jobs)


def run_suite(
    names: _t.Sequence[str],
    *,
    seed: int = 42,
    quick: bool = False,
    jobs: int = 1,
    replicates: int = 1,
) -> list[TaskResult]:
    """Eager form of :func:`iter_suite` (results as a list, in task order)."""
    return list(
        iter_suite(names, seed=seed, quick=quick, jobs=jobs, replicates=replicates)
    )


# -- engine micro-benchmark (BENCH_engine.json) -----------------------------


def churn_workload(device_cls: type, total: int, batch: int, duration: float) -> float:
    """Feed ``total`` bursts, ``batch`` at a time, through a fluid device."""
    from repro.gpu import KernelBurst, gpu_spec
    from repro.sim import Engine

    engine = Engine()
    device = device_cls(engine, gpu_spec("V100"))
    submitted = 0

    def feed() -> None:
        nonlocal submitted
        for _ in range(batch):
            device.submit(KernelBurst(duration=duration, sm_demand=12, sm_activity=0.02))
            submitted += 1
        if submitted < total:
            engine.schedule(0.004, feed)

    engine.schedule(0.0, feed)
    start = time.perf_counter()
    engine.run()
    elapsed = time.perf_counter() - start
    if device.completed_bursts != total:
        raise AssertionError(
            f"churn workload lost bursts: {device.completed_bursts}/{total}"
        )
    return elapsed


def _timer_workload(total: int) -> float:
    from repro.sim import Engine

    engine = Engine()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < total:
            engine.schedule(0.001, tick)

    engine.schedule(0.001, tick)
    start = time.perf_counter()
    engine.run()
    return time.perf_counter() - start


def benchmark_engine(quick: bool = False, jobs: int = 1) -> dict:
    """Measure engine/device hot paths; returns the BENCH_engine.json payload.

    The ``device_churn`` workload keeps ~``batch`` bursts resident at once —
    the regime where the seed model's O(n) timer sweeps blow up.  The
    reference (seed-semantics) device runs a scaled-down burst count and is
    compared on per-burst throughput, which is load- not length-dependent.
    """
    from repro.gpu import GPUDevice, ReferenceGPUDevice

    timer_events = 20_000
    if quick:
        new_total, ref_total, batch = 2_000, 400, 16
    else:
        new_total, ref_total, batch = 8_000, 800, 32
    burst_duration = batch * 0.004 / 2  # keeps ~batch bursts resident

    timer_s = min(_timer_workload(timer_events) for _ in range(3))
    new_s = min(
        churn_workload(GPUDevice, new_total, batch, burst_duration) for _ in range(3)
    )
    ref_s = churn_workload(ReferenceGPUDevice, ref_total, batch, burst_duration)

    new_tput = new_total / new_s
    ref_tput = ref_total / ref_s
    report: dict[str, _t.Any] = {
        "benchmark": "engine",
        "quick": quick,
        "workload": {
            "resident_bursts": batch,
            "burst_duration_s": burst_duration,
            "new_model_bursts": new_total,
            "reference_model_bursts": ref_total,
        },
        "timer_churn": {
            "events": timer_events,
            "seconds": timer_s,
            "events_per_sec": timer_events / timer_s,
        },
        "device_churn": {
            "bursts": new_total,
            "seconds": new_s,
            "bursts_per_sec": new_tput,
        },
        "device_churn_reference": {
            "bursts": ref_total,
            "seconds": ref_s,
            "bursts_per_sec": ref_tput,
        },
        "speedup_vs_reference": new_tput / ref_tput,
    }
    if jobs > 1:
        names = experiment_names()
        serial_t = time.perf_counter()
        serial = run_suite(names, quick=True, jobs=1)
        serial_s = time.perf_counter() - serial_t
        parallel_t = time.perf_counter()
        parallel = run_suite(names, quick=True, jobs=jobs)
        parallel_s = time.perf_counter() - parallel_t
        identical = [s.output for s in serial] == [p.output for p in parallel]
        report["parallel_runner"] = {
            "experiments": names,
            "jobs": jobs,
            "cpu_count": os.cpu_count(),
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "speedup": serial_s / parallel_s,
            "bit_identical": identical,
        }
    return report


def write_benchmark_report(
    path: str = "BENCH_engine.json", *, quick: bool = False, jobs: int = 1
) -> dict:
    """Run :func:`benchmark_engine` and write the JSON report to ``path``."""
    report = benchmark_engine(quick=quick, jobs=jobs)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report
