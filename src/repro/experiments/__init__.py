"""Experiment runners: one module per paper figure/table.

Every module exposes ``run(...) -> <Result dataclass>`` and
``format_result(result) -> str`` printing the same rows/series the paper
reports.  ``quick=True`` shrinks durations for CI/benchmarks without changing
the experimental structure; EXPERIMENTS.md records full-scale results.

==========  ==========================================================
fig01       motivation: device plugin vs time sharing (Fig. 1a/1b)
fig08       profiler throughput grid, 4 models (Fig. 8)
fig09       temporal-only interference vs spatio-temporal isolation (Fig. 9)
fig10       spatial sharing: throughput/latency/util/occupancy (Fig. 10)
fig11       scheduler packing across 4 nodes (Fig. 11)
fig12       auto-scaling under a stepped trace, SLO violations (Fig. 12)
fig13       model-sharing memory footprints (Fig. 13)
fig14       cluster-scale trace replay on heterogeneous GPUs (extension)
headline    the 3.15x / 1.34x / 3.13x improvement summary (§1, §5)
ablations   MRA vs placement baselines; token scheduler variants
==========  ==========================================================

:mod:`repro.experiments.runner` executes any subset of these — serially or
fanned across a process pool with deterministic per-task seeds — and hosts
the engine micro-benchmark behind ``python -m repro bench``.
"""

from repro.experiments import (  # noqa: F401  (re-export for discoverability)
    ablations,
    fig01_motivation,
    fig08_profiling,
    fig09_isolation,
    fig10_spatial,
    fig11_scheduler,
    fig12_autoscaling,
    fig13_modelsharing,
    fig14_cluster,
    headline,
)
from repro.experiments import runner  # noqa: E402,F401  (after the figure
# modules: runner re-imports them from this partially-initialised package)

__all__ = [
    "ablations",
    "fig01_motivation",
    "fig08_profiling",
    "fig09_isolation",
    "fig10_spatial",
    "fig11_scheduler",
    "fig12_autoscaling",
    "fig13_modelsharing",
    "fig14_cluster",
    "headline",
    "runner",
]
