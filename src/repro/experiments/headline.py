"""The headline comparison (abstract / §1 / §5).

"Compared to the time sharing mechanism, FaST-GShare can improve throughput
by 3.15x, GPU utilization by 1.34x, and SM occupancy by 3.13x on average."

The paper's "improve by Nx" is a relative *increase* (new/old − 1):
ResNet's 296.8 vs 71.37 req/s is quoted as "at least 3.15x" (4.16 − 1.01);
Fig. 11's 88.64% vs mean 37.85% utilization as "1.34 times" (2.34 − 1).
We report both the ratios and the increases.

Throughput rows compare 8 spatial pods at 12% SMs against the time-sharing
ceiling (one racing pod's saturated rate, per §5.3); utilization/occupancy
come from the Fig. 11 scheduler experiment.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.experiments import fig11_scheduler
from repro.platform import FaSTGShare

HEADLINE_MODELS: tuple[str, ...] = ("resnet50", "rnnt", "gnmt")

#: §5.3's reported numbers: model -> (spatial 8x12% rps, time-sharing rps).
PAPER_THROUGHPUTS: dict[str, tuple[float, float]] = {
    "resnet50": (296.8, 71.37),
    "rnnt": (43.24, 12.51),
    "gnmt": (43.79, 28.85),
}


@dataclasses.dataclass(frozen=True, slots=True)
class ThroughputRow:
    model: str
    spatial_rps: float
    timeshare_rps: float

    @property
    def ratio(self) -> float:
        return self.spatial_rps / self.timeshare_rps

    @property
    def increase(self) -> float:
        return self.ratio - 1.0


@dataclasses.dataclass(frozen=True, slots=True)
class HeadlineResult:
    throughput: list[ThroughputRow]
    utilization_increase: float
    occupancy_increase: float

    @property
    def mean_throughput_increase(self) -> float:
        return sum(r.increase for r in self.throughput) / len(self.throughput)


def _throughput_row(model: str, duration: float, seed: int) -> ThroughputRow:
    spatial = FaSTGShare.build(nodes=1, sharing="fast", seed=seed)
    spatial.register_function("fn", model=model, model_sharing=True)
    spatial.deploy("fn", configs=[(12, 1.0)] * 8, node=0)
    spatial_rps = spatial.run_closed_loop("fn", concurrency=16, duration=duration).throughput

    racing = FaSTGShare.build(nodes=1, sharing="racing", seed=seed)
    racing.register_function("fn", model=model)
    racing.deploy("fn", configs=[(100, 1.0)], node=0)
    timeshare_rps = racing.run_closed_loop("fn", concurrency=4, duration=duration).throughput
    return ThroughputRow(model=model, spatial_rps=spatial_rps, timeshare_rps=timeshare_rps)


def run(
    models: _t.Sequence[str] = HEADLINE_MODELS,
    duration: float = 20.0,
    seed: int = 42,
    quick: bool = False,
) -> HeadlineResult:
    if quick:
        duration = 6.0
    rows = [_throughput_row(model, duration, seed) for model in models]
    fig11 = fig11_scheduler.run(duration=duration, seed=seed, quick=quick)
    return HeadlineResult(
        throughput=rows,
        utilization_increase=fig11.utilization_increase,
        occupancy_increase=fig11.occupancy_increase,
    )


def format_result(result: HeadlineResult) -> str:
    lines = [
        "Headline — FaST-GShare vs time sharing",
        "  model      spatial 8x12%   time-share   ratio   increase   (paper)",
    ]
    for row in result.throughput:
        paper_s, paper_t = PAPER_THROUGHPUTS.get(row.model, (float("nan"),) * 2)
        lines.append(
            f"  {row.model:<9} {row.spatial_rps:10.1f} r/s {row.timeshare_rps:9.1f} r/s "
            f"{row.ratio:6.2f}x {row.increase:7.2f}x   "
            f"({paper_s:.1f} vs {paper_t:.1f})"
        )
    lines.append(
        f"  mean throughput increase: {result.mean_throughput_increase:.2f}x (paper: 3.15x avg)"
    )
    lines.append(
        f"  GPU utilization increase: {result.utilization_increase:.2f}x (paper: 1.34x)"
    )
    lines.append(
        f"  SM occupancy increase:    {result.occupancy_increase:.2f}x (paper: 3.13x)"
    )
    return "\n".join(lines)
