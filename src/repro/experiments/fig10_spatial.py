"""Fig. 10 — spatial sharing performance (4 metric panels × 3 models).

For ResNet, RNNT, and GNMT, sweep the replica count 2→8 under three
configurations on one V100:

* ``SMs-24%`` — FaST partitions of 24% (over-subscribable: 8×24 = 192%);
* ``SMs-12%`` — FaST partitions of 12% (8×12 = 96% fits concurrently);
* ``Racing``  — no partitions, no tokens: pods race for the device.

Each cell reports saturated throughput, P95 tail latency, GPU utilization,
and SM occupancy — the four panels of the paper's figure.  Expected shape:
spatial sharing wins every panel by a growing margin as replicas increase.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.platform import FaSTGShare

FIG10_MODELS: tuple[str, ...] = ("resnet50", "rnnt", "gnmt")
FIG10_CONFIGS: tuple[tuple[str, str, float], ...] = (
    ("SMs-24%", "fast", 24.0),
    ("SMs-12%", "fast", 12.0),
    ("Racing", "racing", 100.0),
)
FIG10_REPLICAS: tuple[int, ...] = (2, 4, 6, 8)


@dataclasses.dataclass(frozen=True, slots=True)
class Fig10Cell:
    model: str
    config: str
    replicas: int
    throughput: float
    p95_ms: float
    gpu_utilization: float
    sm_occupancy: float


@dataclasses.dataclass(frozen=True, slots=True)
class Fig10Result:
    cells: list[Fig10Cell]

    def cell(self, model: str, config: str, replicas: int) -> Fig10Cell:
        for cell in self.cells:
            if (cell.model, cell.config, cell.replicas) == (model, config, replicas):
                return cell
        raise KeyError((model, config, replicas))

    def series(self, model: str, config: str, metric: str) -> list[float]:
        cells = sorted(
            (c for c in self.cells if c.model == model and c.config == config),
            key=lambda c: c.replicas,
        )
        return [getattr(c, metric) for c in cells]


def _measure(model: str, mode: str, sm: float, replicas: int,
             duration: float, seed: int) -> Fig10Cell:
    platform = FaSTGShare.build(nodes=1, sharing=mode, seed=seed)
    # Model sharing keeps 8 replicas of the larger models within 16 GB
    # (without it, 8 GNMT pods would not fit — §5.5's point).
    platform.register_function("fn", model=model, model_sharing=True)
    platform.deploy("fn", configs=[(sm, 1.0)] * replicas, node=0)
    # k6-style fixed virtual users; 2 VUs per pod keeps every pod saturated
    # with bounded queueing (the paper's latencies are finite).
    report = platform.run_closed_loop("fn", concurrency=2 * replicas, duration=duration)
    (_, util, occ), = report.node_metrics
    return Fig10Cell(
        model=model,
        config="Racing" if mode == "racing" else f"SMs-{sm:.0f}%",
        replicas=replicas,
        throughput=report.throughput,
        p95_ms=report.p95_ms,
        gpu_utilization=util,
        sm_occupancy=occ,
    )


def run(
    models: _t.Sequence[str] = FIG10_MODELS,
    replicas: _t.Sequence[int] = FIG10_REPLICAS,
    duration: float = 20.0,
    seed: int = 42,
    quick: bool = False,
) -> Fig10Result:
    if quick:
        duration = 6.0
        replicas = (2, 8)
    cells = []
    for model in models:
        for _label, mode, sm in FIG10_CONFIGS:
            for n in replicas:
                cells.append(_measure(model, mode, sm, n, duration, seed))
    return Fig10Result(cells=cells)


def format_result(result: Fig10Result) -> str:
    lines = ["Fig. 10 — spatial sharing performance (throughput / P95 / util / SM occ)"]
    models = sorted({c.model for c in result.cells})
    configs = [label for label, _, _ in FIG10_CONFIGS]
    replicas = sorted({c.replicas for c in result.cells})
    for model in models:
        lines.append(f"\n  {model}")
        lines.append("    config     " + "".join(f"{f'n={n}':>26}" for n in replicas))
        for config in configs:
            row = [f"    {config:<11}"]
            for n in replicas:
                cell = result.cell(model, config, n)
                row.append(
                    f"{cell.throughput:7.1f}r/s {cell.p95_ms:6.0f}ms "
                    f"{cell.gpu_utilization:4.0f}% {cell.sm_occupancy:4.1f}%"
                )
            lines.append(" ".join(row))
    return "\n".join(lines)
