"""Fig. 9 — effectiveness of spatial sharing for isolation.

ResNet and RNNT share one GPU.  Under time sharing alone, ResNet holds an
elastic quota (request 50%, limit 80%) and RNNT a fixed 50%: because
80% + 50% > 100%, RNNT's presence visibly drags ResNet's throughput
(Fig. 9a's fluctuations).  With spatio-temporal sharing both get 24% SM
partitions and the same quotas: no mutual influence (Fig. 9b).

We toggle the RNNT load on and off through the run and compare ResNet's
per-second throughput between RNNT-on and RNNT-off phases.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.faas.loadgen import ClosedLoopClient
from repro.platform import FaSTGShare


@dataclasses.dataclass(frozen=True, slots=True)
class IsolationRun:
    mechanism: str
    times: np.ndarray
    resnet_series: np.ndarray
    rnnt_series: np.ndarray
    resnet_on_mean: float   # ResNet rps while RNNT active
    resnet_off_mean: float  # ResNet rps while RNNT idle

    @property
    def interference_drop(self) -> float:
        """Relative ResNet throughput loss when RNNT runs (0 = isolated)."""
        if self.resnet_off_mean == 0:
            return 0.0
        return max(0.0, 1.0 - self.resnet_on_mean / self.resnet_off_mean)


@dataclasses.dataclass(frozen=True, slots=True)
class Fig09Result:
    time_sharing: IsolationRun
    spatio_temporal: IsolationRun


def _run_one(mechanism: str, phase: float, seed: int) -> IsolationRun:
    platform = FaSTGShare.build(nodes=1, sharing="timeshare" if mechanism == "time" else "fast",
                                seed=seed)
    platform.register_function("resnet", model="resnet50")
    platform.register_function("rnnt", model="rnnt")
    if mechanism == "time":
        # Full SMs; ResNet elastic 50-80%, RNNT fixed 50-50% (paper setup).
        platform.deploy("resnet", configs=[(100, 0.5, 0.8)], node=0)
        platform.deploy("rnnt", configs=[(100, 0.5, 0.5)], node=0)
    else:
        # Same quotas, but both spatially isolated at 24% SMs.
        platform.deploy("resnet", configs=[(24, 0.5, 0.8)], node=0)
        platform.deploy("rnnt", configs=[(24, 0.5, 0.5)], node=0)
    platform.wait_ready()
    engine = platform.engine
    t0 = engine.now

    # ResNet under constant closed-loop load for four phases; RNNT load only
    # in phases 2 and 4 (on-off-on-off ... starting OFF).
    resnet_client = ClosedLoopClient(engine, platform.gateway, "resnet", concurrency=6)
    phases = 4
    rnnt_on: list[tuple[float, float]] = []
    for i in range(phases):
        start = engine.now
        if i % 2 == 1:
            rnnt_client = ClosedLoopClient(engine, platform.gateway, "rnnt", concurrency=4)
            engine.run(until=start + phase)
            rnnt_client.stop()
            rnnt_on.append((start - t0, engine.now - t0))
        else:
            engine.run(until=start + phase)
    resnet_client.stop()
    horizon = engine.now - t0

    def series(function: str) -> np.ndarray:
        log = platform.gateway.log.for_function(function)
        shifted = [r.end - t0 for r in log.completed if r.end is not None]
        counts, _ = np.histogram(shifted, bins=np.arange(0.0, horizon + 1.0, 1.0))
        return counts.astype(float)

    resnet = series("resnet")
    rnnt = series("rnnt")
    times = np.arange(1.0, len(resnet) + 1.0)
    on_mask = np.zeros(len(resnet), dtype=bool)
    for a, b in rnnt_on:
        on_mask |= (times > a + 1.0) & (times <= b)  # skip the ramp second
    off_mask = ~on_mask
    return IsolationRun(
        mechanism=mechanism,
        times=times,
        resnet_series=resnet,
        rnnt_series=rnnt,
        resnet_on_mean=float(resnet[on_mask].mean()) if on_mask.any() else 0.0,
        resnet_off_mean=float(resnet[off_mask].mean()) if off_mask.any() else 0.0,
    )


def run(phase: float = 25.0, seed: int = 42, quick: bool = False) -> Fig09Result:
    if quick:
        phase = 8.0
    return Fig09Result(
        time_sharing=_run_one("time", phase, seed),
        spatio_temporal=_run_one("fast", phase, seed),
    )


def format_result(result: Fig09Result) -> str:
    lines = ["Fig. 9 — isolation: ResNet throughput with RNNT toggling on/off"]
    for run_ in (result.time_sharing, result.spatio_temporal):
        label = "time sharing only" if run_.mechanism == "time" else "spatio-temporal"
        lines.append(
            f"  {label:<18} ResNet rps: RNNT-off {run_.resnet_off_mean:6.1f}  "
            f"RNNT-on {run_.resnet_on_mean:6.1f}  "
            f"interference drop {100 * run_.interference_drop:5.1f}%"
        )
    lines.append("  paper shape: drop is large for time sharing, ~0 with spatial partitions")
    return "\n".join(lines)
