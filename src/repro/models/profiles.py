"""Model profile dataclasses and inference-plan generation."""

from __future__ import annotations

import dataclasses
import math
import typing as _t

import numpy as np

from repro.gpu.kernels import InferencePlan, KernelBurst
from repro.models.scaling import interpolate_anchors, monotone, saturation_point

#: Fixed storage-process context the Model Storage Server pays per model on a
#: V100 (paper §5.5: "a fixed overhead of 300M ... to manage the storage
#: process context", the hatched areas in Fig. 13).
SHARE_CONTEXT_MB = 300.0


@dataclasses.dataclass(frozen=True, slots=True)
class MemoryProfile:
    """GPU memory composition of one deployed function instance.

    ``framework_mb`` is the CUDA context + framework runtime (PyTorch/TF),
    ``weights_mb`` the parameter tensors, ``activation_mb`` workspace and
    activation buffers, ``ipc_overhead_mb`` the per-tensor IPC bookkeeping the
    storage server carries.  The three derived footprints reproduce the bars
    of paper Fig. 13 exactly (constants in the zoo).
    """

    framework_mb: float
    weights_mb: float
    activation_mb: float
    ipc_overhead_mb: float = 0.0

    @property
    def original_mb(self) -> float:
        """Footprint of a stand-alone pod (no model sharing)."""
        return self.framework_mb + self.weights_mb + self.activation_mb

    @property
    def shared_pod_mb(self) -> float:
        """Per-pod footprint under model sharing (weights live on the server)."""
        return self.framework_mb + self.activation_mb

    @property
    def server_mb(self) -> float:
        """One-off storage-server footprint: shared tensors + context."""
        return self.weights_mb + SHARE_CONTEXT_MB + self.ipc_overhead_mb

    def total_mb(self, replicas: int, shared: bool) -> float:
        """Whole-GPU footprint for ``replicas`` instances of this function."""
        if replicas < 0:
            raise ValueError("replicas must be >= 0")
        if replicas == 0:
            return 0.0
        if shared:
            return self.server_mb + replicas * self.shared_pod_mb
        return replicas * self.original_mb


@dataclasses.dataclass(frozen=True, slots=True)
class ModelProfile:
    """Calibrated behavioural profile of one DL inference function.

    Timing parameters are for batch-1 inference on a V100 (the paper's
    serving setup).  ``scaling_anchors`` map SM-partition % to relative
    processing rate; see :mod:`repro.models.scaling`.
    """

    name: str
    task: str
    framework: str
    #: GPU-resident ms per request at a 100% SM partition.
    gpu_time_ms: float
    #: Host-side ms per request (pre/post-processing, launch gaps).
    host_time_ms: float
    #: Kernel bursts per request (sync points; recurrent models have many).
    n_bursts: int
    #: Fraction of total SM capacity one request's kernels keep busy at 100%.
    sm_residency: float
    #: Occupancy shrinks on small partitions: activity = residency*(s/100)^exp.
    occupancy_exponent: float
    scaling_anchors: _t.Mapping[float, float]
    memory: MemoryProfile
    #: Latency SLO used by the autoscaler experiments (paper gives ResNet=69ms).
    slo_ms: float
    #: Coefficient of variation of per-request GPU time (measured jitter).
    jitter_cv: float = 0.05
    #: Cold-start seconds: framework boot + weight load/transfer.
    load_time_s: float = 2.0
    #: Cold-start seconds when weights are mapped from the storage server.
    shared_load_time_s: float = 0.3

    def __post_init__(self) -> None:
        if self.gpu_time_ms <= 0 or self.host_time_ms < 0:
            raise ValueError(f"{self.name}: bad timing parameters")
        if self.n_bursts < 1:
            raise ValueError(f"{self.name}: need at least one burst")
        if not 0 < self.sm_residency <= 1:
            raise ValueError(f"{self.name}: sm_residency outside (0,1]")
        if not monotone(self.scaling_anchors):
            raise ValueError(f"{self.name}: scaling anchors must be monotone")

    # -- analytic rates (used by tests, the scheduler, and sanity checks) ----
    def scale(self, partition_pct: float) -> float:
        """Relative rate at ``partition_pct``% SMs."""
        return interpolate_anchors(self.scaling_anchors, partition_pct)

    @property
    def saturation_partition(self) -> float:
        return saturation_point(self.scaling_anchors)

    def service_time_s(self, partition_pct: float) -> float:
        """Expected request latency on an idle GPU at full time quota."""
        return self.gpu_time_ms / 1000.0 / self.scale(partition_pct) + self.host_time_ms / 1000.0

    def expected_rate(
        self, partition_pct: float, quota: float = 1.0, gpu_factor: float = 1.0
    ) -> float:
        """Analytic saturated throughput (req/s) at (S, Q).

        Temporal quota caps GPU residency per wall second at ``quota``; the
        closed-loop serve path additionally pays host time per request.  The
        binding constraint is whichever is smaller.  ``gpu_factor`` rescales
        the calibrated GPU time for a non-V100 device (see
        :func:`repro.models.scaling.gpu_type_factor`); host time is CPU-side
        and does not scale with the GPU type.
        """
        if not 0 < quota <= 1.0:
            raise ValueError(f"quota {quota} outside (0, 1]")
        if gpu_factor <= 0:
            raise ValueError(f"gpu_factor {gpu_factor} must be positive")
        gpu_s = self.gpu_time_ms / 1000.0 / self.scale(partition_pct) / gpu_factor
        quota_bound = quota / gpu_s
        duty_bound = 1.0 / (gpu_s + self.host_time_ms / 1000.0)
        return min(quota_bound, duty_bound)

    def expected_latency_s(
        self,
        partition_pct: float,
        quota: float = 1.0,
        window: float = 0.1,
        gpu_factor: float = 1.0,
    ) -> float:
        """Queue-free *tail* latency bound at (S, Q).

        A pod with quota ``q`` may stall for ``(1-q)·window`` every time it
        exhausts a window's allowance; a request needing ``gpu_s`` of GPU
        time crosses up to ``ceil(gpu_s / (q·window))`` such boundaries.
        This is the latency the scheduler's SLO filter reasons about — it is
        exactly why tight-SLO functions must be given full time quotas and
        isolated spatially instead (the paper's central design point).
        """
        if not 0 < quota <= 1.0:
            raise ValueError(f"quota {quota} outside (0, 1]")
        if window <= 0:
            raise ValueError("window must be positive")
        if gpu_factor <= 0:
            raise ValueError(f"gpu_factor {gpu_factor} must be positive")
        gpu_s = self.gpu_time_ms / 1000.0 / self.scale(partition_pct) / gpu_factor
        stalls = 0 if quota >= 1.0 else math.ceil(gpu_s / (quota * window))
        return gpu_s + stalls * (1.0 - quota) * window + self.host_time_ms / 1000.0

    def sm_activity(self, partition_pct: float) -> float:
        """Occupancy contribution of one running burst at this partition."""
        activity = self.sm_residency * (partition_pct / 100.0) ** self.occupancy_exponent
        return min(activity, partition_pct / 100.0)

    # -- plan generation --------------------------------------------------------
    def make_plan(
        self,
        partition_pct: float,
        rng: np.random.Generator | None = None,
        gpu_factor: float = 1.0,
    ) -> InferencePlan:
        """Generate the kernel-burst plan of one request at ``partition_pct``.

        With ``rng=None`` the plan is deterministic (used by the profiler's
        repeatability tests); otherwise per-request lognormal jitter with the
        profile's CV is applied to the GPU time and burst split.
        ``gpu_factor`` rescales the calibrated GPU-resident time for the
        device type the pod landed on (1.0 = the V100 the zoo was profiled
        on); host gaps are CPU-side and stay fixed.
        """
        if gpu_factor <= 0:
            raise ValueError(f"gpu_factor {gpu_factor} must be positive")
        scale = self.scale(partition_pct)
        total_gpu = self.gpu_time_ms / 1000.0 / scale / gpu_factor
        weights = np.full(self.n_bursts, 1.0 / self.n_bursts)
        if rng is not None and self.jitter_cv > 0:
            sigma = math.sqrt(math.log(1.0 + self.jitter_cv**2))
            total_gpu *= float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))
            raw = rng.uniform(0.7, 1.3, size=self.n_bursts)
            weights = raw / raw.sum()
        activity = self.sm_activity(partition_pct)
        bursts = [
            KernelBurst(
                duration=float(total_gpu * w),
                sm_demand=partition_pct,
                sm_activity=activity,
                owner=self.name,
            )
            for w in weights
        ]
        host_total = self.host_time_ms / 1000.0
        pre_gap = 0.3 * host_total
        per_gap = 0.7 * host_total / self.n_bursts
        return InferencePlan(bursts=bursts, host_gaps=[per_gap] * self.n_bursts, pre_gap=pre_gap)
