"""SM-partition scalability curves.

DL models do not speed up linearly with more SMs: throughput grows roughly
linearly at small partitions and saturates once the model's kernels cannot
fill additional SMs (paper Fig. 8; "a model cannot fully occupy all SMs").
We represent each model's curve by *anchors* measured at the paper's
profiling grid {6, 12, 24, 50, 60, 80, 100}% and interpolate piecewise
linearly between them.
"""

from __future__ import annotations

import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.specs import GPUSpec

#: The device every zoo profile was calibrated on (the paper's testbed GPU).
CALIBRATION_GPU = "V100"
_CALIBRATION_TFLOPS = 15.7
_CALIBRATION_SM_COUNT = 80


def gpu_type_factor(spec: "GPUSpec") -> float:
    """Per-GPU-type profile scaling: serving speed relative to the V100.

    The zoo's timing constants (``gpu_time_ms``, scaling anchors) are
    calibrated on the paper's V100 testbed.  On a heterogeneous cluster a
    pod's kernels run faster or slower in proportion to the device's compute
    throughput; we scale by peak FP32 rate when the catalogue records it and
    fall back to the SM-count ratio otherwise.  A plan's GPU-resident time on
    device ``d`` is the calibrated time divided by this factor.
    """
    if spec.fp32_tflops > 0:
        return spec.fp32_tflops / _CALIBRATION_TFLOPS
    return spec.sm_count / _CALIBRATION_SM_COUNT


def interpolate_anchors(anchors: _t.Mapping[float, float], partition_pct: float) -> float:
    """Relative processing rate (0..1] at ``partition_pct``% of SMs.

    Below the smallest anchor the curve falls linearly to (0, 0) — a zero-SM
    partition does no work.  Above the largest anchor it is clamped (the
    curve has saturated by construction).
    """
    if partition_pct <= 0:
        raise ValueError(f"partition {partition_pct}% must be positive")
    points = sorted(anchors.items())
    if not points:
        raise ValueError("need at least one anchor")
    lo_s, lo_v = points[0]
    if partition_pct <= lo_s:
        return lo_v * partition_pct / lo_s
    for (s0, v0), (s1, v1) in zip(points, points[1:]):
        if partition_pct <= s1:
            frac = (partition_pct - s0) / (s1 - s0)
            return v0 + frac * (v1 - v0)
    return points[-1][1]


def saturation_point(anchors: _t.Mapping[float, float], threshold: float = 0.97) -> float:
    """Smallest anchor partition reaching ``threshold`` of the max rate.

    The paper observes "larger models require more SM partitions to reach the
    saturation state"; this is the quantity the observation is about.
    """
    points = sorted(anchors.items())
    peak = max(v for _, v in points)
    for s, v in points:
        if v >= threshold * peak:
            return s
    return points[-1][0]


def monotone(anchors: _t.Mapping[float, float]) -> bool:
    """True if the anchor curve never decreases (validated at zoo build)."""
    values = [v for _, v in sorted(anchors.items())]
    return all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
