"""The calibrated model zoo.

Every constant below is tied to a number in the paper:

* **Saturated throughputs** (§5.3 text): ResNet racing pod 71.37 req/s, RNNT
  12.51, GNMT 28.85 — these fix ``1/(gpu_time + host_time)``.
* **Scalability anchors** (Fig. 8 curves + §5.3 aggregate throughputs):
  8 pods x 12% SMs reach 296.8 (ResNet), 43.24 (RNNT), 43.79 (GNMT) req/s,
  fixing the 12% anchors at 0.49 / 0.42 / 0.178; the remaining grid points
  follow the Fig. 8 shapes (ResNet saturates by 24%, BERT by ~60%, GNMT only
  at 100%: "larger models require more SM partitions").
* **SM residency** (Figs. 1b/10/11): time-shared occupancy stays below 10%
  while 8-way spatial sharing roughly triples it; residencies 0.055-0.09 with
  a sqrt partition exponent land on the reported 25.3% packed-GPU occupancy.
* **Memory composition** (Fig. 13): framework 1100 MB + per-model weights /
  activations / IPC overhead reproduce the bars exactly
  (1525/1427/416, 1745/1501/601, 3335/1829/1805±1, 4735/2101/2979 MB).
"""

from __future__ import annotations

from repro.models.profiles import MemoryProfile, ModelProfile

#: PyTorch CUDA context + runtime on a V100 — common to all models (Fig. 13).
_FRAMEWORK_MB = 1100.0


def _mk(**kwargs) -> ModelProfile:
    return ModelProfile(**kwargs)


MODEL_ZOO: dict[str, ModelProfile] = {
    # ---- MLPerf serving models (Figs. 8-12) --------------------------------
    "resnet50": _mk(
        name="resnet50",
        task="vision",
        framework="pytorch",
        gpu_time_ms=12.5,
        host_time_ms=1.51,  # 1/(12.5+1.51 ms) = 71.37 req/s racing pod (§5.3)
        n_bursts=4,
        sm_residency=0.055,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.28, 12: 0.49, 24: 0.93, 50: 1.0, 60: 1.0, 80: 1.0, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=98.0, activation_mb=327.0,
            ipc_overhead_mb=18.0,  # Fig. 13: 1525 / 1427 / 416 MB
        ),
        slo_ms=69.0,  # paper §5.4
        load_time_s=2.2,
        shared_load_time_s=0.25,
    ),
    "rnnt": _mk(
        name="rnnt",
        task="speech_recognition",
        framework="pytorch",
        gpu_time_ms=75.0,
        host_time_ms=4.93,  # 1/(75+4.93 ms) = 12.51 req/s (§5.3)
        n_bursts=10,  # recurrent decoder: many sync points per request
        sm_residency=0.060,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.25, 12: 0.42, 24: 0.70, 50: 0.92, 60: 1.0, 80: 1.0, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=519.0, activation_mb=310.0,
            ipc_overhead_mb=30.0,
        ),
        slo_ms=500.0,  # Fig. 10: spatial-sharing tail latency stays below 500 ms
        load_time_s=3.1,
        shared_load_time_s=0.35,
    ),
    "bert": _mk(
        name="bert",
        task="reasoning",
        framework="pytorch",
        gpu_time_ms=18.5,
        host_time_ms=1.5,  # 1/(18.5+1.5 ms) = 50 req/s (Fig. 8 peak)
        n_bursts=4,
        sm_residency=0.090,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.20, 12: 0.40, 24: 0.70, 50: 0.92, 60: 0.97, 80: 1.0, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=650.0, activation_mb=350.0,
            ipc_overhead_mb=35.0,
        ),
        slo_ms=150.0,
        load_time_s=3.4,
        shared_load_time_s=0.35,
    ),
    "gnmt": _mk(
        name="gnmt",
        task="translation",
        framework="tensorflow",
        gpu_time_ms=32.0,
        host_time_ms=2.66,  # 1/(32+2.66 ms) = 28.85 req/s (§5.3)
        n_bursts=6,
        sm_residency=0.075,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.09, 12: 0.178, 24: 0.36, 50: 0.70, 60: 0.80, 80: 0.92, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=758.0, activation_mb=380.0,
            ipc_overhead_mb=40.0,
        ),
        slo_ms=250.0,
        load_time_s=3.6,
        shared_load_time_s=0.4,
    ),
    # ---- Model-sharing study models (Fig. 13) --------------------------------
    "resnet152": _mk(
        name="resnet152",
        task="vision",
        framework="pytorch",
        gpu_time_ms=28.0,
        host_time_ms=2.0,
        n_bursts=5,
        sm_residency=0.060,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.22, 12: 0.42, 24: 0.80, 50: 0.98, 60: 1.0, 80: 1.0, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=244.0, activation_mb=401.0,
            ipc_overhead_mb=57.0,  # Fig. 13: 1745 / 1501 / 601 MB
        ),
        slo_ms=150.0,
        load_time_s=2.8,
        shared_load_time_s=0.3,
    ),
    "resnext_xlarge": _mk(
        name="resnext_xlarge",
        task="vision",
        framework="pytorch",
        gpu_time_ms=55.0,
        host_time_ms=3.0,
        n_bursts=5,
        sm_residency=0.085,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.12, 12: 0.24, 24: 0.46, 50: 0.80, 60: 0.88, 80: 0.97, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=1506.0, activation_mb=729.0,
            ipc_overhead_mb=0.0,  # Fig. 13: 3335 / 1829 / 1805 (we get 1806; ±1 MB)
        ),
        slo_ms=300.0,
        load_time_s=5.0,
        shared_load_time_s=0.5,
    ),
    "vit_huge": _mk(
        name="vit_huge",
        task="vision",
        framework="pytorch",
        gpu_time_ms=85.0,
        host_time_ms=4.0,
        n_bursts=6,
        sm_residency=0.095,
        occupancy_exponent=0.5,
        scaling_anchors={6: 0.08, 12: 0.17, 24: 0.34, 50: 0.68, 60: 0.79, 80: 0.93, 100: 1.0},
        memory=MemoryProfile(
            framework_mb=_FRAMEWORK_MB, weights_mb=2634.0, activation_mb=1001.0,
            ipc_overhead_mb=45.0,  # Fig. 13: 4735 / 2101 / 2979 MB
        ),
        slo_ms=500.0,
        load_time_s=7.5,
        shared_load_time_s=0.6,
    ),
}


def get_model(name: str) -> ModelProfile:
    """Look up a model profile by name."""
    try:
        return MODEL_ZOO[name]
    except KeyError:
        known = ", ".join(sorted(MODEL_ZOO))
        raise KeyError(f"unknown model {name!r}; known: {known}") from None
