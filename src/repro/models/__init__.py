"""DL model substrate: calibrated inference profiles.

The paper benchmarks MLPerf models (ResNet, RNNT, BERT, GNMT) plus two large
transformers (ResNeXt101-xlarge, ViT-Huge) for the model-sharing study.  We
replace the real networks with *calibrated analytic profiles*: per-model GPU
busy time, host overhead, kernel-burst structure, SM-scalability anchors at
the paper's profiling grid, SM residency (occupancy), and memory composition
— each constant derived from a number the paper reports (see DESIGN.md §5).
"""

from repro.models.profiles import MemoryProfile, ModelProfile
from repro.models.scaling import interpolate_anchors, saturation_point
from repro.models.zoo import MODEL_ZOO, get_model

__all__ = [
    "MODEL_ZOO",
    "MemoryProfile",
    "ModelProfile",
    "get_model",
    "interpolate_anchors",
    "saturation_point",
]
