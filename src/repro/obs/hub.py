"""The deterministic telemetry hub every subsystem emits structured events to.

One :class:`TelemetryHub` per engine is the single event stream of a run:
gateway admissions and promotions, scheduler placements (including per-node
reject reasons on a no-fit), autoscaler decisions with their forecast
inputs, memory-tier demote/promote/evict with the fabric contention at
decision time, pod phase transitions, and the engine's own timer channel
(the former standalone ``TraceLog``, now an adapter over this hub).

Design constraints (enforced by tests):

* **off by default, zero-cost when disabled** — a disabled hub's
  :meth:`~TelemetryHub.emit` returns before touching any state, and the
  per-request hot paths additionally guard on :attr:`~TelemetryHub.enabled`
  so no payload dict is even built;
* **deterministic** — event times are the engine's virtual clock only;
  wall-clock never enters a payload, so two runs of the same scenario
  produce byte-identical event streams;
* **bounded** — at most ``max_events`` events are kept; overflow is counted
  in :attr:`~TelemetryHub.dropped` instead of being silently discarded.
"""

from __future__ import annotations

import dataclasses
import typing as _t


@dataclasses.dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One structured event: (virtual time, source subsystem, kind, payload)."""

    time: float
    source: str
    kind: str
    function: str | None
    payload: _t.Mapping[str, object]

    def to_dict(self) -> dict:
        data: dict[str, object] = {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
        }
        if self.function is not None:
            data["function"] = self.function
        if self.payload:
            data["payload"] = dict(self.payload)
        return data

    def __str__(self) -> str:
        fields = " ".join(f"{k}={v}" for k, v in self.payload.items())
        fn = f" fn={self.function}" if self.function else ""
        return f"[{self.time:12.6f}] {self.source:<12} {self.kind:<20}{fn} {fields}"


class TelemetryHub:
    """Append-only structured event stream; disabled by default."""

    __slots__ = ("enabled", "max_events", "events", "dropped", "tap")

    def __init__(self, enabled: bool = False, max_events: int = 1_000_000):
        if max_events < 1:
            raise ValueError("max_events must be >= 1")
        self.enabled = enabled
        self.max_events = max_events
        self.events: list[TelemetryEvent] = []
        self.dropped = 0
        #: Optional live observer called with every emitted event *before*
        #: the bounded-buffer append (so a live stream keeps flowing even
        #: after the buffer fills).  Only consulted while enabled — the
        #: disabled fast path is untouched.  Used by the serve subsystem's
        #: NDJSON telemetry endpoint.
        self.tap: _t.Callable[[TelemetryEvent], None] | None = None

    def emit(
        self,
        time: float,
        source: str,
        kind: str,
        function: str | None = None,
        **payload: object,
    ) -> None:
        """Record one event (no-op while disabled; counted drop when full)."""
        if not self.enabled:
            return
        event = TelemetryEvent(time, source, kind, function, payload)
        if self.tap is not None:
            self.tap(event)
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- queries -------------------------------------------------------------
    def filter(
        self,
        source: str | None = None,
        kind: str | None = None,
        function: str | None = None,
    ) -> list[TelemetryEvent]:
        """Events matching the given source/kind prefixes and function."""
        out = []
        for event in self.events:
            if source is not None and not event.source.startswith(source):
                continue
            if kind is not None and not event.kind.startswith(kind):
                continue
            if function is not None and event.function != function:
                continue
            out.append(event)
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.events)
