"""Observability: telemetry hub, request spans, metrics, and ``explain``.

The deterministic telemetry layer (off by default, zero-cost when
disabled): every subsystem emits structured events to one
:class:`~repro.obs.hub.TelemetryHub` per engine; :mod:`repro.obs.spans`
reconstructs per-request spans (Chrome-trace exportable, Perfetto-viewable),
:mod:`repro.obs.metrics` derives the event-exact metrics registry (with a
Prometheus text writer), and :mod:`repro.obs.explain` reconstructs the
causal chains behind the worst SLO violations from a saved report.
"""

from repro.obs.explain import (
    ExplainError,
    Violation,
    diff_reports,
    explain_report,
    rank_violations,
    segment_means,
)
from repro.obs.hub import TelemetryEvent, TelemetryHub
from repro.obs.metrics import (
    MetricsRegistry,
    build_registry,
    validate_prometheus_text,
)
from repro.obs.spans import (
    RequestSpan,
    assemble_spans,
    to_chrome_trace,
    validate_chrome_trace,
)

#: Format tag written into serialized telemetry blocks.
TELEMETRY_FORMAT = "repro-telemetry/1"

__all__ = [
    "TELEMETRY_FORMAT",
    "TelemetryEvent",
    "TelemetryHub",
    "RequestSpan",
    "assemble_spans",
    "to_chrome_trace",
    "validate_chrome_trace",
    "MetricsRegistry",
    "build_registry",
    "validate_prometheus_text",
    "ExplainError",
    "Violation",
    "diff_reports",
    "explain_report",
    "rank_violations",
    "segment_means",
]
