"""``python -m repro explain REPORT.json`` — causal chains for SLO violations.

Works entirely from a saved :class:`~repro.scenario.report.ScenarioReport`
whose ``telemetry`` block was recorded (``measurement.telemetry: true`` or
``--telemetry``): ranks the worst SLO violations, decomposes each one's
latency into its wait segments, and walks the event stream backwards and
forwards to name the control-plane decisions on its causal chain —

* the **scheduler** placements rejected while the request was parked
  (per-node reject reasons recorded at no-fit time);
* the **autoscaler / memtier** decision that removed capacity before the
  request arrived (demote / retire / down, with its recorded reason and,
  for forecast-driven demotions, forecast gap vs the gap that actually
  happened);
* the promotion / swap-in / placement that eventually served it.

Never-served requests (the swap-bench effective-violation population) rank
worst of all; completed requests rank by excess latency over their
function's SLO.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.obs.spans import RequestSpan


class ExplainError(ValueError):
    """Raised when a report cannot be explained (no telemetry recorded…)."""


@dataclasses.dataclass(frozen=True, slots=True)
class Violation:
    """One ranked SLO violation with its causal context."""

    span: RequestSpan
    slo_ms: float | None
    #: excess over SLO in ms; ``None`` for never-served requests (worst).
    excess_ms: float | None
    causes: tuple[str, ...]

    @property
    def never_served(self) -> bool:
        return self.excess_ms is None


def _slo_of(report: _t.Mapping, function: str) -> float | None:
    entry = report.get("functions", {}).get(function)
    if entry is None:
        return None
    return entry.get("slo_ms")


def load_telemetry(report: _t.Mapping) -> dict:
    """Extract and sanity-check the ``telemetry`` block of a report payload."""
    telemetry = report.get("telemetry")
    if not isinstance(telemetry, dict):
        raise ExplainError(
            "report has no 'telemetry' block — re-run the scenario with "
            "telemetry enabled (--telemetry, or measurement.telemetry: true)"
        )
    for key in ("events", "spans"):
        if not isinstance(telemetry.get(key), list):
            raise ExplainError(f"telemetry block is missing its '{key}' list")
    return telemetry


def rank_violations(
    report: _t.Mapping,
    function: str | None = None,
    worst: int = 3,
) -> list[Violation]:
    """The ``worst`` most severe SLO violations, most severe first."""
    telemetry = load_telemetry(report)
    spans = [RequestSpan.from_dict(s) for s in telemetry["spans"]]
    if function is not None:
        spans = [s for s in spans if s.function == function]
        if not spans:
            raise ExplainError(f"no spans recorded for function {function!r}")
    events = telemetry["events"]

    candidates: list[tuple[tuple, RequestSpan, float | None, float | None]] = []
    for span in spans:
        slo_ms = _slo_of(report, span.function)
        if span.completed:
            if slo_ms is None or span.latency_ms is None:
                continue
            excess = span.latency_ms - slo_ms
            if excess <= 0.0:
                continue
            # Rank completed violations below every never-served request,
            # by descending excess.
            candidates.append(((1, -excess), span, slo_ms, excess))
        elif span.start is None:
            # Never served: the effective-violation population — rank
            # worst, oldest arrival first (it waited the longest).
            candidates.append(((0, span.arrival), span, slo_ms, None))
    candidates.sort(key=lambda c: c[0])

    out = []
    for _, span, slo_ms, excess in candidates[: max(0, worst)]:
        causes = _causal_chain(span, events)
        out.append(Violation(span=span, slo_ms=slo_ms, excess_ms=excess, causes=causes))
    return out


def _causal_chain(span: RequestSpan, events: _t.Sequence[_t.Mapping]) -> tuple[str, ...]:
    """Human-readable causal steps for one violated request, in time order."""
    fn = span.function
    wait_end = span.start if span.start is not None else None
    causes: list[str] = []

    # 1. The capacity-removal decision closest before arrival: why was no
    #    replica accepting when the request came in?
    removal = None
    for event in events:
        if event["time"] >= span.arrival:
            break
        source, kind = event.get("source"), event.get("kind")
        if event.get("function") != fn:
            continue
        if (source, kind) in (
            ("autoscaler", "demote"),
            ("autoscaler", "retire"),
            ("autoscaler", "evict-host"),
            ("memtier", "demote"),
            ("memtier", "evict"),
            ("scheduler", "down"),
            ("migrate", "start"),
        ):
            removal = event
    if removal is not None:
        payload = removal.get("payload", {})
        ago = span.arrival - removal["time"]
        what = {
            "demote": "demoted the pod to host RAM",
            "retire": "retired the warm pod",
            "evict-host": "evicted the host copy",
            "evict": "evicted the host copy",
            "down": "scaled the last capacity down",
            "start": "begun live-migrating the pod to another GPU",
        }[removal["kind"]]
        line = f"{removal['source']} had {what} {ago:.1f}s before arrival"
        if payload.get("reason"):
            line += f" on {payload['reason']}"
        gap = payload.get("forecast_gap_s")
        if gap is not None:
            line += f" (forecast gap {gap:.0f}s, actual gap {ago:.1f}s)"
        causes.append(line)

    # 2. What the request waited on while parked / queued.  For a
    #    never-served request the wait window is open-ended.
    if wait_end is not None:
        in_wait = [e for e in events if span.arrival <= e["time"] <= wait_end]
    else:
        in_wait = [e for e in events if e["time"] >= span.arrival]
    for event in in_wait:
        source, kind = event.get("source"), event.get("kind")
        payload = event.get("payload", {})
        if source == "scheduler" and kind == "nofit" and event.get("function") == fn:
            rejects = payload.get("rejects") or []
            if rejects:
                by_reason: dict[str, list[str]] = {}
                for reject in rejects:
                    by_reason.setdefault(reject["reason"], []).append(reject["node"])
                detail = "; ".join(
                    f"{', '.join(nodes)}: {reason}"
                    for reason, nodes in sorted(by_reason.items())
                )
                causes.append(
                    f"placement rejected all nodes at t={event['time']:.1f}s ({detail})"
                )
            else:
                causes.append(f"placement found no fit at t={event['time']:.1f}s")
        elif source == "migrate" and event.get("function") == fn:
            if kind == "start":
                causes.append(
                    f"replica went mid-migration at t={event['time']:.1f}s "
                    f"({payload.get('src_node', '?')} -> {payload.get('dst_node', '?')}, "
                    f"estimated {payload.get('estimate_s', 0.0):.2f}s)"
                )
            elif kind == "finish":
                causes.append(
                    f"migration landed on {payload.get('dst_node', '?')} "
                    f"at t={event['time']:.1f}s "
                    f"(took {payload.get('duration_s', 0.0):.2f}s)"
                )
            elif kind == "abort":
                causes.append(
                    f"migration aborted at t={event['time']:.1f}s "
                    f"(source stayed on {payload.get('src_node', '?')})"
                )
        elif payload.get("rid") == span.request_id:
            if source == "gateway" and kind == "park":
                causes.append(
                    f"parked at t={event['time']:.1f}s "
                    f"({payload.get('reason', 'cold')}-waiting: no accepting replica)"
                )
            elif source == "gateway" and kind == "unpark":
                causes.append(
                    f"unparked after {payload.get('waited_s', 0.0):.2f}s "
                    f"({payload.get('attributed', 'cold')}-attributed)"
                )
            elif source == "gateway" and kind == "reroute":
                causes.append(
                    f"rerouted at t={event['time']:.1f}s (its replica drained)"
                )

    # 3. The capacity-restoring decision that (eventually) let it run.
    if wait_end is not None:
        restore = None
        for event in events:
            if event["time"] > wait_end:
                break
            if event["time"] < span.arrival or event.get("function") != fn:
                continue
            if (event.get("source"), event.get("kind")) in (
                ("scheduler", "up"),
                ("scheduler", "promote"),
                ("scheduler", "swapin"),
                ("gateway", "promote_warm"),
                ("gateway", "swap_promote"),
                ("memtier", "promote"),
                ("migrate", "finish"),
            ):
                restore = event
        if restore is not None:
            payload = restore.get("payload", {})
            what = {
                ("scheduler", "up"): "scheduler placed a new pod",
                ("scheduler", "promote"): "scheduler promoted a warm pod",
                ("scheduler", "swapin"): "scheduler swapped a parked pod in",
                ("gateway", "promote_warm"): "gateway promoted a warm pod",
                ("gateway", "swap_promote"): "gateway triggered a swap-in",
                ("memtier", "promote"): "memory tier swapped the pod back in",
                ("migrate", "finish"): "migration handed the pod over to its destination",
            }[(restore["source"], restore["kind"])]
            line = f"{what} at t={restore['time']:.1f}s"
            if payload.get("trigger") == "migrate":
                line += " (migration handoff)"
            if payload.get("node"):
                line += f" on {payload['node']}"
            elif payload.get("dst_node"):
                line += f" on {payload['dst_node']}"
            if payload.get("estimate_s") is not None:
                line += (
                    f" (swap estimate {payload['estimate_s']:.2f}s, "
                    f"{payload.get('fabric_active', 0)} transfers active)"
                )
            causes.append(line)
    elif not causes:
        causes.append("no capacity-restoring decision ever reached this request")
    return tuple(causes)


def format_violation(index: int, violation: Violation) -> str:
    """Render one ranked violation as an indented text block."""
    span = violation.span
    lines: list[str] = []
    if violation.never_served:
        head = (
            f"#{index} request {span.request_id} ({span.function}): NEVER SERVED "
            f"(arrived t={span.arrival:.1f}s"
        )
        if span.park_reasons:
            head += f", parked {'/'.join(span.park_reasons)}"
        head += ")"
    else:
        head = (
            f"#{index} request {span.request_id} ({span.function}): "
            f"{span.latency_ms:.0f} ms vs SLO {violation.slo_ms:.0f} ms "
            f"(+{violation.excess_ms:.0f} ms)"
        )
    lines.append(head)
    if span.completed and span.start is not None and span.end is not None:
        segments = [
            ("cold wait", span.cold_wait_s),
            ("swap wait", span.swap_wait_s),
            ("queue wait", span.queue_wait_s),
            ("service", span.end - span.start),
        ]
        parts = [
            f"{name} {1000.0 * value:.0f} ms" for name, value in segments if value > 0
        ]
        lines.append("    segments: " + ", ".join(parts))
    for cause in violation.causes:
        lines.append(f"    - {cause}")
    if not violation.causes:
        lines.append("    - (no control-plane events on this request's chain)")
    return "\n".join(lines)


def explain_report(
    report: _t.Mapping,
    function: str | None = None,
    worst: int = 3,
) -> str:
    """The full ``repro explain`` output for a loaded report payload."""
    violations = rank_violations(report, function=function, worst=worst)
    scope = f" for function {function!r}" if function else ""
    mode = report.get("mode", "sim")
    mode_tag = f" [mode={mode}]" if mode != "sim" else ""
    if not violations:
        return f"No SLO violations recorded{scope}{mode_tag}."
    lines = [
        f"Worst {len(violations)} SLO violation(s){scope} "
        f"(of scenario {report.get('scenario', {}).get('name', '?')!r}{mode_tag}):"
    ]
    for index, violation in enumerate(violations, start=1):
        lines.append(format_violation(index, violation))
    return "\n".join(lines)


# -- span-level report diffing ------------------------------------------------

#: The per-request wait segments compared by ``explain --diff`` (label, ms).
DIFF_SEGMENTS = ("queue_wait_ms", "cold_wait_ms", "swap_wait_ms", "service_ms")


def segment_means(report: _t.Mapping) -> dict[str, dict[str, float]]:
    """Per-function mean wait/cold/swap/service segments (ms) from spans.

    Only completed requests carry all four segments; the returned entry also
    records ``count`` (completed spans) and ``latency_ms`` (mean end-to-end).
    Raises :class:`ExplainError` when the report has no telemetry.
    """
    telemetry = load_telemetry(report)
    sums: dict[str, dict[str, float]] = {}
    for raw in telemetry["spans"]:
        span = RequestSpan.from_dict(raw)
        if not span.completed or span.start is None or span.end is None:
            continue
        entry = sums.setdefault(
            span.function,
            {"count": 0.0, "latency_ms": 0.0} | {key: 0.0 for key in DIFF_SEGMENTS},
        )
        entry["count"] += 1.0
        entry["queue_wait_ms"] += 1000.0 * span.queue_wait_s
        entry["cold_wait_ms"] += 1000.0 * span.cold_wait_s
        entry["swap_wait_ms"] += 1000.0 * span.swap_wait_s
        entry["service_ms"] += 1000.0 * (span.end - span.start)
        entry["latency_ms"] += span.latency_ms or 0.0
    means: dict[str, dict[str, float]] = {}
    for function, entry in sums.items():
        count = entry.pop("count")
        means[function] = {key: value / count for key, value in entry.items()}
        means[function]["count"] = count
    return means


def diff_reports(a: _t.Mapping, b: _t.Mapping) -> str:
    """``repro explain --diff A B`` — compare per-function segment means.

    A is the baseline, B the candidate; positive deltas are regressions
    (B slower).  Functions are ranked by their single worst segment
    regression.  Both reports must carry telemetry.
    """
    means_a = segment_means(a)
    means_b = segment_means(b)
    shared = sorted(set(means_a) & set(means_b))
    if not shared:
        raise ExplainError(
            "no function has completed spans in both reports — "
            f"A has {sorted(means_a) or 'none'}, B has {sorted(means_b) or 'none'}"
        )

    def describe(payload: _t.Mapping, label: str) -> str:
        name = payload.get("scenario", {}).get("name", "?")
        return (
            f"  {label}: scenario {name!r}  mode={payload.get('mode', 'sim')}  "
            f"quick={payload.get('quick')}  completed={payload.get('totals', {}).get('completed')}"
        )

    lines = [
        "Span-segment diff (B - A, positive = regression):",
        describe(a, "A"),
        describe(b, "B"),
        "",
        f"  {'function':<19} {'segment':<14} {'A(ms)':>9} {'B(ms)':>9} {'delta':>9}",
    ]
    regressions: list[tuple[float, str, str]] = []
    for function in shared:
        for segment in DIFF_SEGMENTS:
            va = means_a[function][segment]
            vb = means_b[function][segment]
            delta = vb - va
            lines.append(
                f"  {function:<19} {segment:<14} {va:9.1f} {vb:9.1f} {delta:+9.1f}"
            )
            regressions.append((delta, function, segment))
    regressions.sort(key=lambda item: -item[0])
    worst = [item for item in regressions if item[0] > 0.0][:5]
    lines.append("")
    if worst:
        lines.append("  biggest regressions:")
        for rank, (delta, function, segment) in enumerate(worst, start=1):
            lines.append(f"    {rank}. {function} {segment} +{delta:.1f} ms")
    else:
        lines.append("  no segment regressed (B <= A everywhere).")
    only_a = sorted(set(means_a) - set(means_b))
    only_b = sorted(set(means_b) - set(means_a))
    if only_a:
        lines.append(f"  (functions only in A: {', '.join(only_a)})")
    if only_b:
        lines.append(f"  (functions only in B: {', '.join(only_b)})")
    return "\n".join(lines)
