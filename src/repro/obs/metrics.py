"""Event-exact metrics registry and Prometheus text snapshot writer.

The registry is not sampled: it is *constructed* from the telemetry hub's
event stream and the assembled request spans after a run, so every counter
equals an exact event count and every histogram bucket an exact request
count — re-running the same scenario yields a byte-identical snapshot.

:func:`build_registry` derives the standard metric families (requests,
wait/latency histograms per function, scheduler/autoscaler/memtier decision
counters, per-node placement-reject reasons, pod transitions);
:meth:`MetricsRegistry.to_prometheus_text` renders the exposition-format
snapshot and :func:`validate_prometheus_text` is the schema check CI and
tests share.
"""

from __future__ import annotations

import math
import re
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import TelemetryEvent
    from repro.obs.spans import RequestSpan

#: Histogram bucket upper bounds (milliseconds) for latency/wait families.
DEFAULT_BUCKETS_MS: tuple[float, ...] = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _labelkey(labels: _t.Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Counters, gauges, and histograms keyed by (name, sorted labels)."""

    __slots__ = ("counters", "gauges", "histograms", "buckets_ms", "help")

    def __init__(self, buckets_ms: _t.Sequence[float] = DEFAULT_BUCKETS_MS):
        self.counters: dict[str, dict[_LabelKey, float]] = {}
        self.gauges: dict[str, dict[_LabelKey, float]] = {}
        # histogram cell: {"buckets": [count per bound], "sum": s, "count": n}
        self.histograms: dict[str, dict[_LabelKey, dict]] = {}
        self.buckets_ms = tuple(buckets_ms)
        self.help: dict[str, str] = {}

    def describe(self, name: str, help_text: str) -> None:
        self.help[name] = help_text

    def counter(self, name: str, value: float = 1.0, **labels: str) -> None:
        cells = self.counters.setdefault(name, {})
        key = _labelkey(labels)
        cells[key] = cells.get(key, 0.0) + value

    def gauge(self, name: str, value: float, **labels: str) -> None:
        self.gauges.setdefault(name, {})[_labelkey(labels)] = value

    def observe(self, name: str, value: float, **labels: str) -> None:
        cells = self.histograms.setdefault(name, {})
        key = _labelkey(labels)
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = {
                "buckets": [0] * len(self.buckets_ms),
                "sum": 0.0,
                "count": 0,
            }
        for index, bound in enumerate(self.buckets_ms):
            if value <= bound:
                cell["buckets"][index] += 1
        cell["sum"] += value
        cell["count"] += 1

    # -- snapshots -----------------------------------------------------------
    def to_dict(self) -> dict:
        """Deterministic JSON-ready snapshot (sorted names and label sets)."""

        def flat(cells: _t.Mapping[_LabelKey, float]) -> list[dict]:
            return [
                {"labels": dict(key), "value": cells[key]}
                for key in sorted(cells)
            ]

        payload: dict[str, object] = {
            "counters": {name: flat(self.counters[name]) for name in sorted(self.counters)},
            "gauges": {name: flat(self.gauges[name]) for name in sorted(self.gauges)},
        }
        histograms: dict[str, list[dict]] = {}
        for name in sorted(self.histograms):
            cells = self.histograms[name]
            histograms[name] = [
                {
                    "labels": dict(key),
                    "buckets_ms": list(self.buckets_ms),
                    "bucket_counts": list(cells[key]["buckets"]),
                    "sum": cells[key]["sum"],
                    "count": cells[key]["count"],
                }
                for key in sorted(cells)
            ]
        payload["histograms"] = histograms
        return payload

    def to_prometheus_text(self) -> str:
        """Render the snapshot in Prometheus text exposition format."""
        lines: list[str] = []

        def labelstr(key: _LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
            pairs = key + extra
            if not pairs:
                return ""
            body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
            return "{" + body + "}"

        def header(name: str, kind: str) -> None:
            help_text = self.help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        for name in sorted(self.counters):
            header(name, "counter")
            for key in sorted(self.counters[name]):
                lines.append(f"{name}{labelstr(key)} {_fmt(self.counters[name][key])}")
        for name in sorted(self.gauges):
            header(name, "gauge")
            for key in sorted(self.gauges[name]):
                lines.append(f"{name}{labelstr(key)} {_fmt(self.gauges[name][key])}")
        for name in sorted(self.histograms):
            header(name, "histogram")
            for key in sorted(self.histograms[name]):
                cell = self.histograms[name][key]
                for bound, count in zip(self.buckets_ms, cell["buckets"]):
                    le = (("le", _fmt(bound)),)
                    lines.append(f"{name}_bucket{labelstr(key, le)} {count}")
                inf = (("le", "+Inf"),)
                lines.append(f"{name}_bucket{labelstr(key, inf)} {cell['count']}")
                lines.append(f"{name}_sum{labelstr(key)} {_fmt(cell['sum'])}")
                lines.append(f"{name}_count{labelstr(key)} {cell['count']}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dict(cls, payload: _t.Mapping) -> "MetricsRegistry":
        registry = cls()
        for name, cells in payload.get("counters", {}).items():
            for cell in cells:
                registry.counter(name, cell["value"], **cell.get("labels", {}))
        for name, cells in payload.get("gauges", {}).items():
            for cell in cells:
                registry.gauge(name, cell["value"], **cell.get("labels", {}))
        for name, cells in payload.get("histograms", {}).items():
            for cell in cells:
                key = _labelkey(cell.get("labels", {}))
                registry.buckets_ms = tuple(cell["buckets_ms"])
                registry.histograms.setdefault(name, {})[key] = {
                    "buckets": list(cell["bucket_counts"]),
                    "sum": cell["sum"],
                    "count": cell["count"],
                }
        return registry


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def build_registry(
    events: _t.Iterable["TelemetryEvent"],
    spans: _t.Iterable["RequestSpan"],
    dropped: int = 0,
) -> MetricsRegistry:
    """Derive the standard metric families from one run's telemetry."""
    registry = MetricsRegistry()
    registry.describe("repro_requests_total", "Requests submitted to the gateway.")
    registry.describe("repro_requests_completed_total", "Requests served to completion.")
    registry.describe("repro_requests_unserved_total", "Requests never served in-window.")
    registry.describe("repro_request_latency_ms", "End-to-end request latency.")
    registry.describe("repro_request_cold_wait_ms", "Wait parked with no accepting replica.")
    registry.describe("repro_request_swap_wait_ms", "Wait parked behind a host-to-GPU swap-in.")
    registry.describe("repro_request_queue_wait_ms", "Wait queued on an accepting replica.")
    registry.describe("repro_scheduler_events_total", "Scheduler placement decisions by action.")
    registry.describe("repro_placement_rejects_total", "Per-node placement rejections by reason.")
    registry.describe("repro_autoscaler_events_total", "Autoscaler decisions by action and reason.")
    registry.describe("repro_memtier_events_total", "Memory-tier lifecycle operations.")
    registry.describe("repro_migrations_total", "Live migrations by outcome.")
    registry.describe(
        "repro_fragmentation_ratio",
        "1 - largest-free-rectangle / total-free (cluster and per node).",
    )
    registry.describe("repro_pod_transitions_total", "Pod phase transitions.")
    registry.describe("repro_telemetry_events", "Telemetry events recorded this run.")
    registry.describe("repro_telemetry_dropped", "Telemetry events dropped at the cap.")

    n_events = 0
    for event in events:
        n_events += 1
        fn = event.function
        if event.source == "scheduler":
            registry.counter("repro_scheduler_events_total", action=event.kind)
            if event.kind == "nofit":
                for reject in _t.cast(
                    _t.Sequence[_t.Mapping], event.payload.get("rejects", ())
                ):
                    registry.counter(
                        "repro_placement_rejects_total",
                        node=str(reject.get("node", "")),
                        reason=str(reject.get("reason", "")),
                    )
        elif event.source == "autoscaler" and event.kind != "tick":
            labels = {"action": event.kind}
            if event.payload.get("reason") is not None:
                labels["reason"] = str(event.payload["reason"])
            if fn is not None:
                labels["function"] = fn
            registry.counter("repro_autoscaler_events_total", **labels)
        elif event.source == "memtier":
            labels = {"op": event.kind}
            if fn is not None:
                labels["function"] = fn
            registry.counter("repro_memtier_events_total", **labels)
        elif event.source == "migrate":
            if event.kind == "frag":
                # Gauges: the last frag tick's snapshot wins (event-exact).
                registry.gauge(
                    "repro_fragmentation_ratio",
                    float(event.payload.get("cluster", 0.0)),
                    scope="cluster",
                )
                for node, value in sorted(
                    _t.cast(_t.Mapping, event.payload.get("nodes", {})).items()
                ):
                    registry.gauge(
                        "repro_fragmentation_ratio", float(value), scope="node", node=node
                    )
            else:  # start / finish / abort
                labels = {"outcome": event.kind}
                if fn is not None:
                    labels["function"] = fn
                registry.counter("repro_migrations_total", **labels)
        elif event.source == "pod" and event.kind == "transition":
            registry.counter(
                "repro_pod_transitions_total",
                phase_from=str(event.payload.get("from", "")),
                phase_to=str(event.payload.get("to", "")),
            )
    registry.gauge("repro_telemetry_events", float(n_events))
    registry.gauge("repro_telemetry_dropped", float(dropped))

    for span in spans:
        fn = span.function
        registry.counter("repro_requests_total", function=fn)
        if span.completed:
            registry.counter("repro_requests_completed_total", function=fn)
        elif span.start is None:
            registry.counter("repro_requests_unserved_total", function=fn)
        if span.latency_ms is not None:
            registry.observe("repro_request_latency_ms", span.latency_ms, function=fn)
        if span.completed:
            registry.observe(
                "repro_request_cold_wait_ms", 1000.0 * span.cold_wait_s, function=fn
            )
            registry.observe(
                "repro_request_swap_wait_ms", 1000.0 * span.swap_wait_s, function=fn
            )
            registry.observe(
                "repro_request_queue_wait_ms", 1000.0 * span.queue_wait_s, function=fn
            )
    return registry


# -- Prometheus text validation ----------------------------------------------

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>\S+)$"
)
_LABELS_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_prometheus_text(text: str) -> None:
    """Schema-check a Prometheus text-format snapshot; raises ``ValueError``.

    Checks: every non-comment line is ``name[{labels}] value`` with a legal
    metric name, well-formed label pairs, and a parseable value; every
    sample's base family was declared by a preceding ``# TYPE`` line.
    """
    if not text.endswith("\n"):
        raise ValueError("prometheus: snapshot must end with a newline")
    typed: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                if not _NAME_RE.fullmatch(parts[2]):
                    raise ValueError(f"line {lineno}: bad metric name {parts[2]!r}")
                if parts[1] == "TYPE":
                    if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram", "summary", "untyped"
                    ):
                        raise ValueError(f"line {lineno}: bad TYPE declaration")
                    typed.add(parts[2])
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample line: {line!r}")
        labels = match.group("labels")
        if labels:
            for pair in _split_labels(labels[1:-1]):
                if not _LABELS_RE.fullmatch(pair):
                    raise ValueError(f"line {lineno}: bad label pair {pair!r}")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(f"line {lineno}: bad sample value {value!r}") from None
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            raise ValueError(f"line {lineno}: sample {name!r} missing # TYPE declaration")


def _split_labels(body: str) -> list[str]:
    """Split a label body on commas that are outside quoted values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quote = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quote = not in_quote
            current.append(char)
            continue
        if char == "," and not in_quote:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
