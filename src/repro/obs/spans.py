"""Per-request spans assembled from the telemetry hub's event stream.

A :class:`RequestSpan` is the request-level latency attribution the
aggregate wait means dead-end on: arrival → cold/swap/queue wait → service
→ completion, with the same attribution rules the gateway uses
(``cold_wait`` = parked with no accepting replica, ``swap_wait`` = parked
behind an in-flight host→GPU swap-in, ``queue_wait`` = the remainder of the
pre-service wait), so span segment means reconcile exactly with
``RunReport``'s ``*_wait_ms_mean`` fields.

Spans cover *every* submitted request, not just completed ones:

* **never-served** requests (swap-bench's effective-violation population)
  produce an open span — ``completed=False``, no service segment;
* **drained in-flight** requests at measurement end keep their last
  ``service_start`` but no completion;
* **rerouted** requests (their replica drained/died mid-queue) carry a
  reroute count; their final service segment is the one that completed.

:func:`to_chrome_trace` renders spans as Chrome trace-event JSON
(one process per function, one track per request) loadable in Perfetto;
:func:`validate_chrome_trace` is the schema check CI and tests share.
"""

from __future__ import annotations

import dataclasses
import typing as _t

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.obs.hub import TelemetryEvent


@dataclasses.dataclass(slots=True)
class RequestSpan:
    """One request's reconstructed lifecycle."""

    request_id: int
    function: str
    arrival: float
    start: float | None = None
    end: float | None = None
    replica: str | None = None
    cold_wait_s: float = 0.0
    swap_wait_s: float = 0.0
    completed: bool = False
    #: times the request was re-admitted after its replica drained/died.
    rerouted: int = 0
    #: park reasons observed while pending ("cold"/"swap"), in order.
    park_reasons: tuple[str, ...] = ()

    @property
    def queue_wait_s(self) -> float:
        """Wait behind other requests on an accepting replica (seconds)."""
        if self.start is None:
            return 0.0
        return max(0.0, self.start - self.arrival - self.cold_wait_s - self.swap_wait_s)

    @property
    def service_s(self) -> float | None:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    @property
    def latency_ms(self) -> float | None:
        if self.end is None:
            return None
        return 1000.0 * (self.end - self.arrival)

    def to_dict(self) -> dict:
        payload: dict[str, object] = {
            "request_id": self.request_id,
            "function": self.function,
            "arrival": self.arrival,
            "completed": self.completed,
        }
        if self.start is not None:
            payload["start"] = self.start
        if self.end is not None:
            payload["end"] = self.end
        if self.replica is not None:
            payload["replica"] = self.replica
        if self.cold_wait_s:
            payload["cold_wait_s"] = self.cold_wait_s
        if self.swap_wait_s:
            payload["swap_wait_s"] = self.swap_wait_s
        if self.start is not None:
            payload["queue_wait_s"] = self.queue_wait_s
        if self.rerouted:
            payload["rerouted"] = self.rerouted
        if self.park_reasons:
            payload["park_reasons"] = list(self.park_reasons)
        return payload

    @classmethod
    def from_dict(cls, payload: _t.Mapping) -> "RequestSpan":
        return cls(
            request_id=int(payload["request_id"]),
            function=str(payload["function"]),
            arrival=float(payload["arrival"]),
            start=payload.get("start"),
            end=payload.get("end"),
            replica=payload.get("replica"),
            cold_wait_s=float(payload.get("cold_wait_s", 0.0)),
            swap_wait_s=float(payload.get("swap_wait_s", 0.0)),
            completed=bool(payload.get("completed", False)),
            rerouted=int(payload.get("rerouted", 0)),
            park_reasons=tuple(payload.get("park_reasons", ())),
        )


def assemble_spans(events: _t.Iterable["TelemetryEvent"]) -> list[RequestSpan]:
    """Reconstruct one span per submitted request from the event stream.

    Completed requests take their timestamps and wait attribution from the
    gateway's ``complete`` event (authoritative — it reflects the final
    routing after any reroutes).  Requests with no completion keep whatever
    the stream saw: parks (→ ``park_reasons``), the last ``service_start``
    (→ drained in-flight), or nothing beyond arrival (→ never served).
    """
    spans: dict[int, RequestSpan] = {}
    for event in events:
        payload = event.payload
        if event.source == "gateway" and event.kind == "arrival":
            rid = _t.cast(int, payload["rid"])
            spans[rid] = RequestSpan(
                request_id=rid,
                function=event.function or "",
                arrival=event.time,
            )
            continue
        rid_obj = payload.get("rid")
        if rid_obj is None:
            continue
        rid = _t.cast(int, rid_obj)
        span = spans.get(rid)
        if span is None:
            continue  # submitted before the stream opened
        if event.source == "gateway" and event.kind == "park":
            span.park_reasons += (str(payload.get("reason", "cold")),)
        elif event.source == "gateway" and event.kind == "reroute":
            span.rerouted += 1
            span.start = None
            span.replica = None
        elif event.source == "replica" and event.kind == "service_start":
            span.start = event.time
            span.replica = _t.cast(str, payload.get("replica"))
        elif event.source == "gateway" and event.kind == "complete":
            span.start = _t.cast(float, payload.get("start"))
            span.end = event.time
            span.replica = _t.cast(str, payload.get("replica"))
            span.cold_wait_s = _t.cast(float, payload.get("cold_wait_s", 0.0))
            span.swap_wait_s = _t.cast(float, payload.get("swap_wait_s", 0.0))
            span.completed = True
    return sorted(spans.values(), key=lambda s: (s.arrival, s.request_id))


# -- Chrome trace-event export (Perfetto-loadable) ---------------------------

#: Span segments rendered as trace slices, in lifecycle order.
_SEGMENTS = ("cold_wait", "swap_wait", "queue_wait", "service")


def to_chrome_trace(
    spans: _t.Sequence[RequestSpan], clip_s: float | None = None
) -> dict:
    """Render spans as Chrome trace-event JSON (``{"traceEvents": [...]}``).

    One *process* per function (named via ``process_name`` metadata), one
    *thread* (track) per request.  Each span becomes consecutive complete
    ("X") slices — cold wait, swap wait, queue wait, service — whose
    durations sum to the request latency.  Open spans (never served or
    still in flight) render a single ``unserved_wait`` / ``service
    (unfinished)`` slice up to ``clip_s`` (the measurement end).
    Timestamps are virtual-clock microseconds; no wall-clock enters.
    """
    functions = sorted({s.function for s in spans})
    pid_of = {name: index + 1 for index, name in enumerate(functions)}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": pid_of[name],
            "tid": 0,
            "args": {"name": name},
        }
        for name in functions
    ]

    def us(t: float) -> int:
        return int(round(t * 1e6))

    for span in spans:
        pid = pid_of[span.function]
        tid = span.request_id
        args = {"request_id": span.request_id}
        if span.replica is not None:
            args["replica"] = span.replica  # type: ignore[assignment]
        if span.rerouted:
            args["rerouted"] = span.rerouted
        if span.completed and span.start is not None and span.end is not None:
            cursor = span.arrival
            durations = {
                "cold_wait": span.cold_wait_s,
                "swap_wait": span.swap_wait_s,
                "queue_wait": span.queue_wait_s,
                "service": span.end - span.start,
            }
            for segment in _SEGMENTS:
                duration = durations[segment]
                if duration <= 0.0:
                    continue
                events.append(
                    {
                        "ph": "X",
                        "name": segment,
                        "cat": "request",
                        "ts": us(cursor),
                        "dur": us(duration),
                        "pid": pid,
                        "tid": tid,
                        "args": args,
                    }
                )
                cursor += duration
            continue
        # Open span: a single slice up to the measurement end.
        clip = clip_s if clip_s is not None else span.arrival
        if span.start is not None:
            events.append(
                {
                    "ph": "X",
                    "name": "service (unfinished)",
                    "cat": "request",
                    "ts": us(span.start),
                    "dur": us(max(0.0, clip - span.start)),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "X",
                    "name": "unserved_wait",
                    "cat": "violation",
                    "ts": us(span.arrival),
                    "dur": us(max(0.0, clip - span.arrival)),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def validate_chrome_trace(payload: object) -> None:
    """Schema-check a Chrome trace-event document; raises ``ValueError``.

    The subset Perfetto's JSON importer requires: a ``traceEvents`` list of
    objects, each with a string ``ph`` and ``name`` and integer ``pid`` and
    ``tid``; complete ("X") slices additionally need non-negative numeric
    ``ts`` and ``dur``.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"trace: expected an object, got {type(payload).__name__}")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace: 'traceEvents' must be a list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where}: expected an object")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            raise ValueError(f"{where}: missing phase 'ph'")
        if not isinstance(event.get("name"), str):
            raise ValueError(f"{where}: missing 'name'")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int) or isinstance(event.get(key), bool):
                raise ValueError(f"{where}: '{key}' must be an integer")
        if ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    raise ValueError(f"{where}: '{key}' must be a number")
                if value < 0:
                    raise ValueError(f"{where}: '{key}' must be >= 0, got {value}")
