"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro list
    python -m repro fig08 [--quick] [--seed 42]
    python -m repro all --quick --jobs 4
    python -m repro --jobs 4                 # full figure suite, parallel
    python -m repro bench --quick            # writes BENCH_engine.json
    python -m repro cluster-bench --quick    # writes BENCH_cluster.json
    python -m repro prewarm-bench --quick    # writes BENCH_prewarm.json

``--jobs N`` fans the selected experiments (and ``--replicates R`` seed
replicates of each) across ``N`` worker processes via
:mod:`repro.experiments.runner`; per-task seeds are deterministic, so the
parallel run prints bit-identical results to the serial one.

``cluster-bench`` replays a production-shaped trace set over a heterogeneous
GPU cluster under each placement policy (``--nodes``/``--policies``) and
writes per-policy SLO-violation/GPU-count metrics to ``--cluster-output``.

``prewarm-bench`` replays the cold/bursty trace subset under each
*autoscaling* mode (reactive / predictive / oracle; ``--policies``) and
writes per-policy SLO-violation/cold-start/GPU-seconds metrics to
``--prewarm-output``.  Both benches accept ``--trace-file`` to replay a
committed trace file instead of synthesizing one.

Any invalid invocation (unknown experiment, bad ``--nodes``/``--policies``
value) exits non-zero with a usage message, and an experiment that raises
exits 1 — CI cannot silently pass on a typo'd bench run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import runner
from repro.experiments.runner import SIMPLE_EXPERIMENTS, ablations


def _cmd_list() -> int:
    for name in runner.experiment_names():
        doc = (SIMPLE_EXPERIMENTS.get(name) or ablations).__doc__ or ""
        print(f"{name:<10} {doc.strip().splitlines()[0]}")
    print("bench      Engine micro-benchmark (writes BENCH_engine.json).")
    print("cluster-bench  Heterogeneous-cluster trace replay (writes BENCH_cluster.json).")
    print("prewarm-bench  Reactive-vs-predictive autoscaling replay (writes BENCH_prewarm.json).")
    return 0


def _cmd_bench(quick: bool, jobs: int, output: str) -> int:
    report = runner.write_benchmark_report(output, quick=quick, jobs=jobs)
    churn = report["device_churn"]
    ref = report["device_churn_reference"]
    print(f"timer churn     : {report['timer_churn']['events_per_sec']:,.0f} events/s")
    print(f"device churn    : {churn['bursts_per_sec']:,.0f} bursts/s (single-timer model)")
    print(f"reference model : {ref['bursts_per_sec']:,.0f} bursts/s (seed semantics)")
    print(f"speedup         : {report['speedup_vs_reference']:.1f}x")
    if "parallel_runner" in report:
        par = report["parallel_runner"]
        print(
            f"parallel runner : {par['speedup']:.2f}x on {par['jobs']} jobs "
            f"(bit_identical={par['bit_identical']})"
        )
    print(f"[report written to {output}]")
    return 0


def _cmd_cluster_bench(
    quick: bool,
    seed: int,
    nodes: list[str],
    policies: list[str],
    output: str,
    trace_file: str | None,
) -> int:
    from repro.experiments import fig14_cluster

    result = fig14_cluster.run(
        quick=quick, seed=seed, nodes=nodes, policies=policies, trace_file=trace_file
    )
    print(fig14_cluster.format_result(result))
    fig14_cluster.write_cluster_report(output, result)
    print(f"[report written to {output}]")
    return 0


def _cmd_prewarm_bench(
    quick: bool,
    seed: int,
    nodes: list[str] | None,
    policies: list[str] | None,
    output: str,
    trace_file: str | None,
) -> int:
    from repro.experiments import fig15_prewarm

    result = fig15_prewarm.run(
        quick=quick, seed=seed, nodes=nodes, policies=policies, trace_file=trace_file
    )
    print(fig15_prewarm.format_result(result))
    fig15_prewarm.write_prewarm_report(output, result)
    print(f"[report written to {output}]")
    return 0


def _split_csv(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate FaST-GShare (ICPP 2023) experiments.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        choices=sorted(SIMPLE_EXPERIMENTS)
        + ["ablations", "all", "list", "bench", "cluster-bench", "prewarm-bench"],
        help="which experiment to run (or 'list' / 'all' / 'bench' / 'cluster-bench' / "
        "'prewarm-bench'; default: all)",
    )
    parser.add_argument("--quick", action="store_true", help="shrunk durations for a fast pass")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment suite (default: 1 = serial)",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        metavar="R",
        help="seed replicates per experiment (deterministic derived seeds)",
    )
    parser.add_argument(
        "--bench-output",
        default="BENCH_engine.json",
        metavar="PATH",
        help="where 'bench' writes its JSON report",
    )
    parser.add_argument(
        "--nodes",
        default=None,
        metavar="GPUS",
        help="cluster-bench: comma-separated per-node GPU types, e.g. V100,A100,T4",
    )
    parser.add_argument(
        "--policies",
        default=None,
        metavar="POLICIES",
        help="cluster-bench: comma-separated placement policies "
        "(binpack, spread, affinity; default: all)",
    )
    parser.add_argument(
        "--cluster-output",
        default="BENCH_cluster.json",
        metavar="PATH",
        help="where 'cluster-bench' writes its JSON report",
    )
    parser.add_argument(
        "--prewarm-output",
        default="BENCH_prewarm.json",
        metavar="PATH",
        help="where 'prewarm-bench' writes its JSON report",
    )
    parser.add_argument(
        "--trace-file",
        default=None,
        metavar="PATH",
        help="cluster-bench/prewarm-bench: replay a committed trace file "
        "(fast-gshare-trace/1 JSON) instead of synthesizing one",
    )
    args = parser.parse_args(argv)
    if args.replicates < 1:
        parser.error(f"--replicates must be >= 1, got {args.replicates}")

    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "bench":
        return _cmd_bench(args.quick, args.jobs, args.bench_output)
    if args.trace_file is not None and args.experiment not in ("cluster-bench", "prewarm-bench"):
        parser.error("--trace-file only applies to cluster-bench / prewarm-bench")
    if args.experiment in ("cluster-bench", "prewarm-bench"):
        from repro.experiments.fig14_cluster import DEFAULT_NODES, QUICK_NODES
        from repro.experiments.fig15_prewarm import PREWARM_NODES, SCALING_POLICIES
        from repro.gpu.specs import GPU_CATALOG
        from repro.scheduler.mra import PLACEMENT_POLICIES

        prewarm = args.experiment == "prewarm-bench"
        known_policies = SCALING_POLICIES if prewarm else PLACEMENT_POLICIES
        default_nodes = PREWARM_NODES if prewarm else DEFAULT_NODES
        if args.nodes is None:
            nodes = list(QUICK_NODES if args.quick else default_nodes)
        else:
            nodes = [n.upper() for n in _split_csv(args.nodes)]
        if len(nodes) < 1:
            parser.error("--nodes needs at least one GPU type")
        for name in nodes:
            if name not in GPU_CATALOG:
                parser.error(f"unknown GPU type {name!r}; known: {sorted(GPU_CATALOG)}")
        policies = list(known_policies) if args.policies is None else _split_csv(args.policies)
        if not policies:
            parser.error("--policies needs at least one policy")
        for policy in policies:
            if policy not in known_policies:
                parser.error(f"unknown policy {policy!r}; known: {known_policies}")
        try:
            if prewarm:
                return _cmd_prewarm_bench(
                    args.quick, args.seed, nodes, policies, args.prewarm_output, args.trace_file
                )
            return _cmd_cluster_bench(
                args.quick, args.seed, nodes, policies, args.cluster_output, args.trace_file
            )
        except BrokenPipeError:  # e.g. `python -m repro ...-bench | head`
            return 0
        except Exception as exc:  # bad trace file, bench blow-up: exit non-zero
            import traceback

            traceback.print_exc()
            print(f"error: {args.experiment}: {exc}", file=sys.stderr)
            return 1

    names = runner.experiment_names() if args.experiment == "all" else [args.experiment]
    try:
        results = runner.iter_suite(
            names,
            seed=args.seed,
            quick=args.quick,
            jobs=args.jobs,
            replicates=args.replicates,
        )
        for result in results:
            print(result.output)
            tag = result.name if result.replicate == 0 else f"{result.name} r{result.replicate}"
            print(f"[{tag} finished in {result.elapsed:.1f}s]\n")
    except BrokenPipeError:  # e.g. `python -m repro ... | head`
        return 0
    except Exception as exc:  # experiment blew up: fail loudly, exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: {args.experiment}: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
