"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro list
    python -m repro fig08 [--quick] [--seed 42]
    python -m repro all --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablations,
    fig01_motivation,
    fig08_profiling,
    fig09_isolation,
    fig10_spatial,
    fig11_scheduler,
    fig12_autoscaling,
    fig13_modelsharing,
    headline,
)

_SIMPLE = {
    "fig01": fig01_motivation,
    "fig08": fig08_profiling,
    "fig09": fig09_isolation,
    "fig10": fig10_spatial,
    "fig11": fig11_scheduler,
    "fig12": fig12_autoscaling,
    "fig13": fig13_modelsharing,
    "headline": headline,
}


def _run_ablations(quick: bool, seed: int) -> str:
    duration = 5.0 if quick else 12.0
    placement = ablations.run_placement_ablation(seed=seed, pods=200)
    tokens = ablations.run_token_ablation(duration=duration, seed=seed)
    priority = ablations.run_priority_ablation(duration=duration, seed=seed)
    return ablations.format_results(placement, tokens, priority)


def run_one(name: str, quick: bool, seed: int) -> str:
    if name == "ablations":
        return _run_ablations(quick, seed)
    module = _SIMPLE[name]
    kwargs = {"quick": quick, "seed": seed}
    result = module.run(**kwargs)
    return module.format_result(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate FaST-GShare (ICPP 2023) experiments.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SIMPLE) + ["ablations", "all", "list"],
        help="which experiment to run (or 'list' / 'all')",
    )
    parser.add_argument("--quick", action="store_true", help="shrunk durations for a fast pass")
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(_SIMPLE) + ["ablations"]:
            doc = (_SIMPLE.get(name) or ablations).__doc__ or ""
            print(f"{name:<10} {doc.strip().splitlines()[0]}")
        return 0

    names = sorted(_SIMPLE) + ["ablations"] if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        output = run_one(name, args.quick, args.seed)
        elapsed = time.perf_counter() - start
        print(output)
        print(f"[{name} finished in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
