"""Command-line entry point: run any paper experiment.

Usage::

    python -m repro list
    python -m repro fig08 [--quick] [--seed 42]
    python -m repro all --quick --jobs 4
    python -m repro --jobs 4                 # full figure suite, parallel
    python -m repro bench --quick            # writes BENCH_engine.json

``--jobs N`` fans the selected experiments (and ``--replicates R`` seed
replicates of each) across ``N`` worker processes via
:mod:`repro.experiments.runner`; per-task seeds are deterministic, so the
parallel run prints bit-identical results to the serial one.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import runner
from repro.experiments.runner import SIMPLE_EXPERIMENTS, ablations


def _cmd_list() -> int:
    for name in runner.experiment_names():
        doc = (SIMPLE_EXPERIMENTS.get(name) or ablations).__doc__ or ""
        print(f"{name:<10} {doc.strip().splitlines()[0]}")
    return 0


def _cmd_bench(quick: bool, jobs: int, output: str) -> int:
    report = runner.write_benchmark_report(output, quick=quick, jobs=jobs)
    churn = report["device_churn"]
    ref = report["device_churn_reference"]
    print(f"timer churn     : {report['timer_churn']['events_per_sec']:,.0f} events/s")
    print(f"device churn    : {churn['bursts_per_sec']:,.0f} bursts/s (single-timer model)")
    print(f"reference model : {ref['bursts_per_sec']:,.0f} bursts/s (seed semantics)")
    print(f"speedup         : {report['speedup_vs_reference']:.1f}x")
    if "parallel_runner" in report:
        par = report["parallel_runner"]
        print(
            f"parallel runner : {par['speedup']:.2f}x on {par['jobs']} jobs "
            f"(bit_identical={par['bit_identical']})"
        )
    print(f"[report written to {output}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate FaST-GShare (ICPP 2023) experiments.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default="all",
        choices=sorted(SIMPLE_EXPERIMENTS) + ["ablations", "all", "list", "bench"],
        help="which experiment to run (or 'list' / 'all' / 'bench'; default: all)",
    )
    parser.add_argument("--quick", action="store_true", help="shrunk durations for a fast pass")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment suite (default: 1 = serial)",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        metavar="R",
        help="seed replicates per experiment (deterministic derived seeds)",
    )
    parser.add_argument(
        "--bench-output",
        default="BENCH_engine.json",
        metavar="PATH",
        help="where 'bench' writes its JSON report",
    )
    args = parser.parse_args(argv)
    if args.replicates < 1:
        parser.error(f"--replicates must be >= 1, got {args.replicates}")

    if args.experiment == "list":
        return _cmd_list()
    if args.experiment == "bench":
        return _cmd_bench(args.quick, args.jobs, args.bench_output)

    names = runner.experiment_names() if args.experiment == "all" else [args.experiment]
    results = runner.iter_suite(
        names,
        seed=args.seed,
        quick=args.quick,
        jobs=args.jobs,
        replicates=args.replicates,
    )
    for result in results:
        print(result.output)
        tag = result.name if result.replicate == 0 else f"{result.name} r{result.replicate}"
        print(f"[{tag} finished in {result.elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
