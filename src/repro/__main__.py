"""Command-line entry point: subcommands for experiments, scenarios, benches.

Usage::

    python -m repro list
    python -m repro run fig08 [--quick] [--seed 42]
    python -m repro run all --quick --jobs 4
    python -m repro scenario examples/scenarios/cold_bursty.json [--quick]
    python -m repro sweep examples/sweeps/azure_fleet.json --quick --jobs 2
    python -m repro sweep --diff A.json B.json   # compare two saved sweep reports
    python -m repro scenario SPEC.json --telemetry --trace-out T.json --prom-out M.prom
    python -m repro explain REPORT.json --worst 3 # causal chains for SLO violations
    python -m repro explain --diff A.json B.json # span-segment diff of two reports
    python -m repro serve examples/scenarios/cold_bursty.json --quick --port 8080
    python -m repro replay examples/scenarios/cold_bursty.json --quick --port 8080
    python -m repro bench --quick                # writes BENCH_engine.json
    python -m repro cluster-bench --quick        # writes BENCH_cluster.json
    python -m repro prewarm-bench --quick        # writes BENCH_prewarm.json
    python -m repro swap-bench --quick           # writes BENCH_swap.json
    python -m repro migrate-bench --quick        # writes BENCH_migrate.json

Each subcommand owns its flags (``--nodes`` belongs to the cluster benches,
``--output`` to whatever report that subcommand writes) instead of leaking
them into one global namespace.

``run`` executes paper figures; ``--jobs N`` fans the selected experiments
(and ``--replicates R`` seed replicates of each) across ``N`` worker
processes via :mod:`repro.experiments.runner`; per-task seeds are
deterministic, so the parallel run prints bit-identical results to the
serial one.

``scenario`` evaluates a committed declarative spec (see
:mod:`repro.scenario`) through ``FaSTGShare.run_scenario`` — the same code
path fig12/fig14/fig15 use — printing the report summary and optionally
writing its JSON (``--output``).  A malformed spec (unknown field, bad
policy, bad model) exits non-zero with the offending path.

``serve`` runs the identical control plane live: deployment in virtual
time, then the engine paced against a wall clock behind an asyncio HTTP
front (invoke / health / stats / NDJSON telemetry / graceful drain — see
:mod:`repro.serve`).  ``replay`` fires the scenario's exact DES arrival
schedule at such a server with client timeouts, capped-backoff retries,
and optional hedged requests, then drains it and writes the live
``ScenarioReport`` (``mode: "live"``) for diffing against the sim run.

``sweep`` expands a committed parameter grid (see :mod:`repro.sweep`) over
a base scenario and executes every cell — the same driver fig14/fig15 use
for their policy comparisons — printing the cell table, per-axis deltas,
and the SLO-vs-GPU-cost Pareto frontier; ``--jobs N`` fans cells across the
process pool (bit-identical to serial).  ``sweep --diff A B`` compares two
saved sweep reports cell by cell instead of running anything.

``cluster-bench`` replays a production-shaped trace set over a heterogeneous
GPU cluster under each placement policy (``--nodes``/``--policies``);
``prewarm-bench`` replays the cold/bursty subset under each *autoscaling*
mode.  Both accept ``--trace-file`` to replay a committed trace file instead
of synthesizing one, ``--jobs N`` to fan the per-policy replays across the
process pool, and ``--warmup SECONDS`` to open the measured window after the
initial ramp.

``swap-bench`` replays a committed long-tail fleet (aggregate model size far
beyond cluster GPU memory) under each keep-alive policy — scale-to-zero,
WARM_IDLE-only, and the swap-aware memory tier — and reports GPU-seconds vs
effective SLO violations (never-served requests count as violations); see
:mod:`repro.experiments.swap_bench`.

``migrate-bench`` replays a deliberately fragmented spread-placement fleet
with background defragmentation off and on (live migration; see
:mod:`repro.migrate`) and reports mean GPUs vs effective violations; see
:mod:`repro.experiments.migrate_bench`.

Any invalid invocation (unknown subcommand, bad ``--nodes``/``--policies``
value, malformed scenario) exits non-zero with a usage message, and an
experiment that raises exits 1 — CI cannot silently pass on a typo'd run.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import runner
from repro.experiments.runner import SIMPLE_EXPERIMENTS, ablations


def _cmd_list() -> int:
    for name in runner.experiment_names():
        doc = (SIMPLE_EXPERIMENTS.get(name) or ablations).__doc__ or ""
        print(f"{name:<10} {doc.strip().splitlines()[0]}")
    print("scenario   Run a declarative scenario spec (examples/scenarios/*.json).")
    print("serve      Serve a scenario's control plane live over HTTP (wall-clock).")
    print("replay     Fire a scenario's DES arrival schedule at a live server.")
    print("sweep      Run a declarative parameter sweep (examples/sweeps/*.json) or diff reports.")
    print("bench      Engine micro-benchmark (writes BENCH_engine.json).")
    print("cluster-bench  Heterogeneous-cluster trace replay (writes BENCH_cluster.json).")
    print("prewarm-bench  Reactive-vs-predictive autoscaling replay (writes BENCH_prewarm.json).")
    print("swap-bench Long-tail keep-alive vs memory-tier replay (writes BENCH_swap.json).")
    print("migrate-bench  Defragmentation on-vs-off replay (writes BENCH_migrate.json).")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    names = runner.experiment_names() if args.experiment == "all" else [args.experiment]
    try:
        results = runner.iter_suite(
            names,
            seed=args.seed,
            quick=args.quick,
            jobs=args.jobs,
            replicates=args.replicates,
        )
        for result in results:
            print(result.output)
            tag = result.name if result.replicate == 0 else f"{result.name} r{result.replicate}"
            print(f"[{tag} finished in {result.elapsed:.1f}s]\n")
    except BrokenPipeError:  # e.g. `python -m repro run ... | head`
        return 0
    except Exception as exc:  # experiment blew up: fail loudly, exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: {args.experiment}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.platform import FaSTGShare
    from repro.scenario import ScenarioError, load_scenario

    try:
        scenario = load_scenario(args.spec)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.seed is not None:
        scenario = dataclasses.replace(scenario, seed=args.seed)
    if (args.telemetry or args.trace_out or args.prom_out) and not scenario.measurement.telemetry:
        scenario = dataclasses.replace(
            scenario,
            measurement=dataclasses.replace(scenario.measurement, telemetry=True),
        )
    try:
        report = FaSTGShare.run_scenario(scenario, quick=args.quick)
        print(report.summary())
        if args.output:
            report.save(args.output)
            print(f"[report written to {args.output}]")
        if args.trace_out:
            _write_chrome_trace(report.telemetry, args.trace_out)
            print(f"[Chrome trace written to {args.trace_out}]")
        if args.prom_out:
            _write_prometheus(report.telemetry, args.prom_out)
            print(f"[Prometheus snapshot written to {args.prom_out}]")
    except BrokenPipeError:  # e.g. `python -m repro scenario ... | head`
        return 0
    except Exception as exc:  # bad trace reference, runner blow-up: exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: scenario {scenario.name!r}: {exc}", file=sys.stderr)
        return 1
    return 0


def _write_chrome_trace(telemetry: dict, path: str) -> None:
    """Export a report's spans as (validated) Chrome trace-event JSON."""
    import json

    from repro.obs import RequestSpan, to_chrome_trace, validate_chrome_trace

    spans = [RequestSpan.from_dict(s) for s in telemetry["spans"]]
    trace = to_chrome_trace(spans, clip_s=telemetry.get("end"))
    validate_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _write_prometheus(telemetry: dict, path: str) -> None:
    """Export a report's metrics snapshot as (validated) Prometheus text."""
    from repro.obs import MetricsRegistry, validate_prometheus_text

    registry = MetricsRegistry.from_dict(telemetry["metrics"])
    text = registry.to_prometheus_text()
    validate_prometheus_text(text)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)


def _load_report_payload(path: str) -> dict | None:
    import json

    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(payload, dict):
        print(f"error: {path}: not a report object", file=sys.stderr)
        return None
    return payload


def _cmd_explain(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.obs import ExplainError, diff_reports, explain_report

    if args.diff is not None:
        if args.report is not None:
            parser.error("explain: give either a REPORT.json or --diff A B, not both")
        a = _load_report_payload(args.diff[0])
        b = _load_report_payload(args.diff[1])
        if a is None or b is None:
            return 2
        try:
            print(diff_reports(a, b))
        except ExplainError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except BrokenPipeError:  # e.g. `python -m repro explain --diff ... | head`
            return 0
        return 0
    if args.report is None:
        parser.error("explain: needs a REPORT.json (or --diff A B)")
    payload = _load_report_payload(args.report)
    if payload is None:
        return 2
    try:
        print(explain_report(payload, function=args.function, worst=args.worst))
    except ExplainError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:  # e.g. `python -m repro explain ... | head`
        return 0
    return 0


def _load_scenario_for_cli(args: argparse.Namespace):
    """Shared serve/replay preamble: load the spec, apply seed override."""
    import dataclasses

    from repro.scenario import ScenarioError, load_scenario

    try:
        scenario = load_scenario(args.spec)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if args.seed is not None:
        scenario = dataclasses.replace(scenario, seed=args.seed)
    return scenario


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import dataclasses

    from repro.serve import ServeConfig, ServeError, serve_scenario

    scenario = _load_scenario_for_cli(args)
    if scenario is None:
        return 2
    if args.telemetry and not scenario.measurement.telemetry:
        scenario = dataclasses.replace(
            scenario,
            measurement=dataclasses.replace(scenario.measurement, telemetry=True),
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        deadline_s=args.deadline,
    )

    def announce(server) -> None:
        print(
            f"[serving {scenario.name!r} on http://{config.host}:{server.port} — "
            "POST /drain to stop]",
            flush=True,
        )

    try:
        report = asyncio.run(
            serve_scenario(scenario, config, quick=args.quick, on_ready=announce)
        )
        print(report.summary())
        if args.output:
            report.save(args.output)
            print(f"[report written to {args.output}]")
    except ServeError as exc:
        print(f"error: serve: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\nerror: serve: interrupted before drain", file=sys.stderr)
        return 130
    except Exception as exc:  # runner blow-up: exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: serve {scenario.name!r}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.serve import ReplayConfig, ReplayError, format_summary, replay

    scenario = _load_scenario_for_cli(args)
    if scenario is None:
        return 2
    config = ReplayConfig(
        host=args.host,
        port=args.port,
        timeout_s=args.timeout,
        retries=args.retries,
        backoff_s=args.backoff,
        backoff_cap_s=args.backoff_cap,
        hedge_s=args.hedge,
        speed=args.speed,
    )
    try:
        payload = asyncio.run(replay(scenario, config, quick=args.quick))
    except ReplayError as exc:
        print(f"error: replay: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("\nerror: replay: interrupted", file=sys.stderr)
        return 130
    print(format_summary(payload))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[report written to {args.output}]")
    return 0


def _cmd_sweep(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import dataclasses

    from repro.sweep import SweepError, diff_reports, load_sweep, load_sweep_report, run_sweep

    if args.diff is not None:
        if args.spec is not None:
            parser.error("sweep: give either a SPEC.json to run or --diff A B, not both")
        try:
            a = load_sweep_report(args.diff[0])
            b = load_sweep_report(args.diff[1])
            print(diff_reports(a, b))
        except SweepError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except BrokenPipeError:  # e.g. `python -m repro sweep --diff ... | head`
            return 0
        return 0
    if args.spec is None:
        parser.error("sweep: needs a SPEC.json to run (or --diff A B)")
    try:
        sweep = load_sweep(args.spec)
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.seed is not None:
        sweep = dataclasses.replace(
            sweep, base=dataclasses.replace(sweep.base, seed=args.seed)
        )
    try:
        report = run_sweep(
            sweep,
            quick=args.quick,
            jobs=args.jobs,
            progress=lambda cell: print(f"[cell {cell.key} done]", file=sys.stderr),
        )
        print(report.summary())
        if args.output:
            report.save(args.output)
            print(f"[report written to {args.output}]")
    except BrokenPipeError:  # e.g. `python -m repro sweep ... | head`
        return 0
    except Exception as exc:  # bad trace reference, runner blow-up: exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: sweep {sweep.name!r}: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    report = runner.write_benchmark_report(args.output, quick=args.quick, jobs=args.jobs)
    churn = report["device_churn"]
    ref = report["device_churn_reference"]
    print(f"timer churn     : {report['timer_churn']['events_per_sec']:,.0f} events/s")
    print(f"device churn    : {churn['bursts_per_sec']:,.0f} bursts/s (single-timer model)")
    print(f"reference model : {ref['bursts_per_sec']:,.0f} bursts/s (seed semantics)")
    print(f"speedup         : {report['speedup_vs_reference']:.1f}x")
    if "parallel_runner" in report:
        par = report["parallel_runner"]
        print(
            f"parallel runner : {par['speedup']:.2f}x on {par['jobs']} jobs "
            f"(bit_identical={par['bit_identical']})"
        )
    print(f"[report written to {args.output}]")
    return 0


def _split_csv(raw: str) -> list[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_cluster_like(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Shared driver for cluster-bench / prewarm-bench (validate, run, write)."""
    from repro.experiments import fig14_cluster, fig15_prewarm
    from repro.experiments.fig14_cluster import DEFAULT_NODES, QUICK_NODES
    from repro.experiments.fig15_prewarm import PREWARM_NODES, SCALING_POLICIES
    from repro.gpu.specs import GPU_CATALOG
    from repro.scheduler.mra import PLACEMENT_POLICIES

    prewarm = args.command == "prewarm-bench"
    known_policies = SCALING_POLICIES if prewarm else PLACEMENT_POLICIES
    default_nodes = PREWARM_NODES if prewarm else DEFAULT_NODES
    if args.nodes is None:
        nodes = list(QUICK_NODES if args.quick else default_nodes)
    else:
        nodes = [n.upper() for n in _split_csv(args.nodes)]
    if len(nodes) < 1:
        parser.error("--nodes needs at least one GPU type")
    for name in nodes:
        if name not in GPU_CATALOG:
            parser.error(f"unknown GPU type {name!r}; known: {sorted(GPU_CATALOG)}")
    policies = list(known_policies) if args.policies is None else _split_csv(args.policies)
    if not policies:
        parser.error("--policies needs at least one policy")
    for policy in policies:
        if policy not in known_policies:
            parser.error(f"unknown policy {policy!r}; known: {known_policies}")
    if len(set(policies)) != len(policies):
        parser.error(f"--policies lists a policy twice: {','.join(policies)}")
    try:
        if prewarm:
            result = fig15_prewarm.run(
                quick=args.quick,
                seed=args.seed,
                nodes=nodes,
                policies=policies,
                trace_file=args.trace_file,
                jobs=args.jobs,
                warmup_s=args.warmup,
            )
            print(fig15_prewarm.format_result(result))
            fig15_prewarm.write_prewarm_report(args.output, result)
        else:
            result = fig14_cluster.run(
                quick=args.quick,
                seed=args.seed,
                nodes=nodes,
                policies=policies,
                trace_file=args.trace_file,
                jobs=args.jobs,
                warmup_s=args.warmup,
            )
            print(fig14_cluster.format_result(result))
            fig14_cluster.write_cluster_report(args.output, result)
        print(f"[report written to {args.output}]")
        return 0
    except BrokenPipeError:  # e.g. `python -m repro ...-bench | head`
        return 0
    except Exception as exc:  # bad trace file, bench blow-up: exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: {args.command}: {exc}", file=sys.stderr)
        return 1


def _cmd_swap_bench(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.experiments import swap_bench
    from repro.gpu.specs import GPU_CATALOG

    if args.nodes is None:
        nodes = None  # module defaults (quick vs full shapes)
    else:
        nodes = [n.upper() for n in _split_csv(args.nodes)]
        if not nodes:
            parser.error("--nodes needs at least one GPU type")
        for name in nodes:
            if name not in GPU_CATALOG:
                parser.error(f"unknown GPU type {name!r}; known: {sorted(GPU_CATALOG)}")
    policies = None if args.policies is None else _split_csv(args.policies)
    if policies is not None:
        if not policies:
            parser.error("--policies needs at least one policy")
        for policy in policies:
            if policy not in swap_bench.SWAP_POLICIES:
                parser.error(
                    f"unknown policy {policy!r}; known: {swap_bench.SWAP_POLICIES}"
                )
        if len(set(policies)) != len(policies):
            parser.error(f"--policies lists a policy twice: {','.join(policies)}")
    try:
        result = swap_bench.run(
            quick=args.quick,
            seed=args.seed,
            nodes=nodes,
            policies=policies,
            jobs=args.jobs,
        )
        print(swap_bench.format_result(result))
        swap_bench.write_swap_report(args.output, result)
        print(f"[report written to {args.output}]")
        return 0
    except BrokenPipeError:  # e.g. `python -m repro swap-bench | head`
        return 0
    except Exception as exc:  # bench blow-up: exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: swap-bench: {exc}", file=sys.stderr)
        return 1


def _cmd_migrate_bench(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.experiments import migrate_bench
    from repro.gpu.specs import GPU_CATALOG

    if args.nodes is None:
        nodes = None  # module defaults (quick vs full shapes)
    else:
        nodes = [n.upper() for n in _split_csv(args.nodes)]
        if not nodes:
            parser.error("--nodes needs at least one GPU type")
        for name in nodes:
            if name not in GPU_CATALOG:
                parser.error(f"unknown GPU type {name!r}; known: {sorted(GPU_CATALOG)}")
    threshold = (
        migrate_bench.DEFRAG_THRESHOLD if args.threshold is None else args.threshold
    )
    if not 0.0 < threshold < 1.0:
        parser.error(f"--threshold must be in (0, 1), got {threshold}")
    try:
        result = migrate_bench.run(
            quick=args.quick,
            seed=args.seed,
            nodes=nodes,
            fleet_size=args.fleet_size,
            threshold=threshold,
            jobs=args.jobs,
        )
        print(migrate_bench.format_result(result))
        migrate_bench.write_migrate_report(args.output, result)
        print(f"[report written to {args.output}]")
        return 0
    except BrokenPipeError:  # e.g. `python -m repro migrate-bench | head`
        return 0
    except Exception as exc:  # bench blow-up: exit non-zero
        import traceback

        traceback.print_exc()
        print(f"error: migrate-bench: {exc}", file=sys.stderr)
        return 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate FaST-GShare (ICPP 2023) experiments and scenarios.",
    )
    sub = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    p_run = sub.add_parser("run", help="run paper figure experiments")
    p_run.add_argument(
        "experiment",
        nargs="?",
        default="all",
        choices=sorted(SIMPLE_EXPERIMENTS) + ["ablations", "all"],
        help="which experiment to run (default: all)",
    )
    p_run.add_argument("--quick", action="store_true", help="shrunk durations for a fast pass")
    p_run.add_argument("--seed", type=int, default=42)
    p_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment suite (default: 1 = serial)",
    )
    p_run.add_argument(
        "--replicates",
        type=int,
        default=1,
        metavar="R",
        help="seed replicates per experiment (deterministic derived seeds)",
    )

    sub.add_parser("list", help="list runnable experiments and benches")

    p_scenario = sub.add_parser(
        "scenario", help="run a declarative scenario spec (JSON)"
    )
    p_scenario.add_argument("spec", metavar="SPEC.json", help="path to a scenario file")
    p_scenario.add_argument(
        "--quick", action="store_true", help="run the deterministic shrunk variant"
    )
    p_scenario.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    p_scenario.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the ScenarioReport JSON here",
    )
    p_scenario.add_argument(
        "--telemetry",
        action="store_true",
        help="record structured telemetry (events/spans/metrics) into the report",
    )
    p_scenario.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="export request spans as Chrome trace-event JSON (implies --telemetry); "
        "open in Perfetto (https://ui.perfetto.dev)",
    )
    p_scenario.add_argument(
        "--prom-out",
        default=None,
        metavar="PATH",
        help="export the metrics snapshot as Prometheus text (implies --telemetry)",
    )

    p_explain = sub.add_parser(
        "explain",
        help="reconstruct causal chains behind the worst SLO violations in a "
        "telemetry-enabled ScenarioReport",
    )
    p_explain.add_argument(
        "report",
        nargs="?",
        default=None,
        metavar="REPORT.json",
        help="a report saved with telemetry enabled",
    )
    p_explain.add_argument(
        "--function", default=None, metavar="F", help="only explain this function"
    )
    p_explain.add_argument(
        "--worst", type=int, default=3, metavar="N", help="how many violations (default 3)"
    )
    p_explain.add_argument(
        "--diff",
        nargs=2,
        default=None,
        metavar=("A.json", "B.json"),
        help="compare per-function wait/cold/swap segment means between two "
        "telemetry-bearing reports instead of explaining one",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve a scenario's control plane live over HTTP (wall-clock time)",
    )
    p_serve.add_argument("spec", metavar="SPEC.json", help="path to a scenario file")
    p_serve.add_argument(
        "--quick", action="store_true", help="serve the deterministic shrunk variant"
    )
    p_serve.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    p_serve.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    p_serve.add_argument(
        "--port", type=int, default=8080, metavar="P", help="listen port (default 8080)"
    )
    p_serve.add_argument(
        "--max-connections",
        type=int,
        default=64,
        metavar="N",
        help="concurrent-connection cap; excess connections get 503 (default 64)",
    )
    p_serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request completion deadline; 504 past it (default 30)",
    )
    p_serve.add_argument(
        "--telemetry",
        action="store_true",
        help="record telemetry into the drained report and enable "
        "GET /telemetry/stream (live NDJSON)",
    )
    p_serve.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the drained live ScenarioReport JSON here",
    )

    p_replay = sub.add_parser(
        "replay",
        help="fire a scenario's exact DES arrival schedule at a live server",
    )
    p_replay.add_argument("spec", metavar="SPEC.json", help="path to a scenario file")
    p_replay.add_argument(
        "--quick", action="store_true", help="replay the deterministic shrunk variant"
    )
    p_replay.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    p_replay.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    p_replay.add_argument(
        "--port", type=int, default=8080, metavar="P", help="server port (default 8080)"
    )
    p_replay.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request response deadline (default 10)",
    )
    p_replay.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="extra attempts on timeout/connection error/5xx (default 2)",
    )
    p_replay.add_argument(
        "--backoff",
        type=float,
        default=0.1,
        metavar="SECONDS",
        help="initial retry backoff, doubled per attempt (default 0.1)",
    )
    p_replay.add_argument(
        "--backoff-cap",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="retry backoff ceiling (default 2.0)",
    )
    p_replay.add_argument(
        "--hedge",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fire a duplicate request if the primary is silent this long "
        "(default: hedging off)",
    )
    p_replay.add_argument(
        "--speed",
        type=float,
        default=1.0,
        metavar="X",
        help="arrival-time compression (2.0 = twice as fast; values != 1 "
        "distort comparability against the DES run)",
    )
    p_replay.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the drained live report (+ client stats) JSON here",
    )

    p_sweep = sub.add_parser(
        "sweep", help="run a declarative parameter sweep (JSON) or diff two reports"
    )
    p_sweep.add_argument(
        "spec", nargs="?", default=None, metavar="SPEC.json", help="path to a sweep file"
    )
    p_sweep.add_argument(
        "--quick", action="store_true", help="run each cell's deterministic shrunk variant"
    )
    p_sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the grid cells (default: 1 = serial; "
        "bit-identical to serial)",
    )
    p_sweep.add_argument(
        "--seed", type=int, default=None, help="override the base scenario's seed"
    )
    p_sweep.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the SweepReport JSON here",
    )
    p_sweep.add_argument(
        "--diff",
        nargs=2,
        default=None,
        metavar=("A.json", "B.json"),
        help="compare two saved sweep reports cell by cell instead of running",
    )

    p_bench = sub.add_parser("bench", help="engine micro-benchmark")
    p_bench.add_argument("--quick", action="store_true")
    p_bench.add_argument("--jobs", type=int, default=1, metavar="N")
    p_bench.add_argument(
        "--output",
        default="BENCH_engine.json",
        metavar="PATH",
        help="where to write the JSON report",
    )

    for name, default_output, help_text in (
        ("cluster-bench", "BENCH_cluster.json", "heterogeneous-cluster trace replay"),
        ("prewarm-bench", "BENCH_prewarm.json", "reactive-vs-predictive autoscaling replay"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--quick", action="store_true")
        p.add_argument("--seed", type=int, default=42)
        p.add_argument(
            "--nodes",
            default=None,
            metavar="GPUS",
            help="comma-separated per-node GPU types, e.g. V100,A100,T4",
        )
        p.add_argument(
            "--policies",
            default=None,
            metavar="POLICIES",
            help="comma-separated policies to replay (default: all)",
        )
        p.add_argument(
            "--output",
            default=default_output,
            metavar="PATH",
            help="where to write the JSON report",
        )
        p.add_argument(
            "--trace-file",
            default=None,
            metavar="PATH",
            help="replay a committed trace file (fast-gshare-trace/1 JSON) "
            "instead of synthesizing one",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for the per-policy replays "
            "(default: 1 = serial; bit-identical to serial)",
        )
        p.add_argument(
            "--warmup",
            type=float,
            default=None,
            metavar="SECONDS",
            help="exclude the first SECONDS of the replay from every metric "
            "(steady-state window; default: the bench's measurement warm-up)",
        )

    p_swap = sub.add_parser(
        "swap-bench", help="long-tail keep-alive vs memory-tier replay"
    )
    p_swap.add_argument("--quick", action="store_true")
    p_swap.add_argument("--seed", type=int, default=42)
    p_swap.add_argument(
        "--nodes",
        default=None,
        metavar="GPUS",
        help="comma-separated per-node GPU types (default: the bench's shape)",
    )
    p_swap.add_argument(
        "--policies",
        default=None,
        metavar="POLICIES",
        help="comma-separated keep-alive policies to replay (default: all)",
    )
    p_swap.add_argument(
        "--output",
        default="BENCH_swap.json",
        metavar="PATH",
        help="where to write the JSON report",
    )
    p_swap.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the per-policy replays "
        "(default: 1 = serial; bit-identical to serial)",
    )

    p_migrate = sub.add_parser(
        "migrate-bench", help="defragmentation on-vs-off replay (live migration)"
    )
    p_migrate.add_argument("--quick", action="store_true")
    p_migrate.add_argument("--seed", type=int, default=42)
    p_migrate.add_argument(
        "--nodes",
        default=None,
        metavar="GPUS",
        help="comma-separated per-node GPU types (default: the bench's shape)",
    )
    p_migrate.add_argument(
        "--fleet-size",
        type=int,
        default=None,
        metavar="N",
        help="burst-then-decay functions in the fleet (default: the bench's shape)",
    )
    p_migrate.add_argument(
        "--threshold",
        type=float,
        default=None,
        metavar="F",
        help="defrag trigger threshold in (0, 1) for the 'on' cell "
        "(default: the bench's)",
    )
    p_migrate.add_argument(
        "--output",
        default="BENCH_migrate.json",
        metavar="PATH",
        help="where to write the JSON report",
    )
    p_migrate.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the two cells "
        "(default: 1 = serial; bit-identical to serial)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        if args.replicates < 1:
            parser.error(f"--replicates must be >= 1, got {args.replicates}")
        return _cmd_run(args)
    if args.command == "scenario":
        return _cmd_scenario(args)
    if args.command == "sweep":
        return _cmd_sweep(args, parser)
    if args.command == "explain":
        return _cmd_explain(args, parser)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "swap-bench":
        return _cmd_swap_bench(args, parser)
    if args.command == "migrate-bench":
        return _cmd_migrate_bench(args, parser)
    return _cmd_cluster_like(args, parser)


if __name__ == "__main__":
    sys.exit(main())
