"""``python -m repro replay`` — fire a committed trace at a live server.

The replayer reconstructs the *exact* arrival times the DES's open-loop
generator would produce — same scenario seed, same
``RngStreams(seed).stream("loadgen.<fn>")`` derivation, same
``Workload.arrival_times`` draw — so a live run is diffable request-for-
request against the simulation of the same scenario.  Client-side overload
behaviors the DES cannot express ride on top:

* **per-request timeouts** (``--timeout``),
* **capped exponential-backoff retries** (``--retries`` / ``--backoff`` /
  ``--backoff-cap``) on connection errors, timeouts, and 5xx,
* **hedged requests** (``--hedge``): a duplicate fired when the primary is
  still unanswered after the hedge delay; first response wins.

When all arrivals settle the replayer POSTs ``/drain``: the server closes
the measured window, aggregates the identical ``ScenarioReport`` schema the
DES path writes (``mode: "live"``), and the replayer saves it with a
``client`` block of client-side counters appended.

Mid-replay server death (connection refused/reset with a failed health
probe) aborts immediately with a clear error — no hangs.
"""

from __future__ import annotations

import asyncio
import dataclasses
import typing as _t

from repro.scenario.runner import resolve_workload
from repro.scenario.spec import Scenario
from repro.serve import http
from repro.sim.rng import RngStreams


class ReplayError(RuntimeError):
    """Fatal replay failure (unreachable server, mid-replay death…)."""


@dataclasses.dataclass(slots=True)
class ReplayConfig:
    """Client knobs for one replay."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: per-request response deadline, seconds.
    timeout_s: float = 10.0
    #: extra attempts after the first (connection errors / timeouts / 5xx).
    retries: int = 2
    #: initial retry backoff, doubled per attempt, capped at backoff_cap_s.
    backoff_s: float = 0.1
    backoff_cap_s: float = 2.0
    #: fire a duplicate request if the primary is silent this long (None = off).
    hedge_s: float | None = None
    #: arrival-time compression factor (2.0 = replay twice as fast).  Values
    #: other than 1.0 distort comparability against the DES run.
    speed: float = 1.0
    #: how long to wait for /drain to aggregate the report.
    drain_timeout_s: float = 120.0


@dataclasses.dataclass(slots=True)
class ReplayStats:
    """Client-side counters for one replay."""

    submitted: int = 0
    ok: int = 0
    timeouts: int = 0
    rejected: int = 0  # non-200 responses (503 draining, 504 deadline…)
    conn_errors: int = 0
    retries: int = 0
    hedged: int = 0
    hedge_wins: int = 0
    abandoned: int = 0  # skipped because the server was declared dead
    latency_ms_sum: float = 0.0

    def to_dict(self) -> dict:
        data = dataclasses.asdict(self)
        latency_sum = data.pop("latency_ms_sum")
        data["latency_ms_mean"] = latency_sum / self.ok if self.ok else 0.0
        return data


def arrival_schedule(scenario: Scenario) -> dict[str, list[float]]:
    """Per-function arrival offsets, identical to the DES open-loop draw."""
    streams = RngStreams(scenario.seed)
    trace_cache: dict[str, _t.Any] = {}
    schedule: dict[str, list[float]] = {}
    for fn in scenario.functions:
        workload, _ = resolve_workload(fn, scenario.seed, trace_cache)
        rng = streams.stream(f"loadgen.{fn.name}")
        schedule[fn.name] = [float(t) for t in workload.arrival_times(rng)]
    return schedule


class Replayer:
    """Drives one replay against a live server."""

    def __init__(self, scenario: Scenario, config: ReplayConfig | None = None,
                 quick: bool = False):
        if quick:
            scenario = scenario.quick()
        self.scenario = scenario
        self.config = config or ReplayConfig()
        self.stats = ReplayStats()
        self._dead = asyncio.Event()
        self._death_reason = ""

    # -- wire helpers ------------------------------------------------------
    async def _post(self, path: str, timeout: float | None = None) -> http.HttpResponse:
        return await http.request(
            self.config.host, self.config.port, "POST", path,
            timeout=timeout if timeout is not None else self.config.timeout_s,
        )

    async def _probe(self) -> bool:
        """Is the server still answering /healthz?"""
        try:
            response = await http.request(
                self.config.host, self.config.port, "GET", "/healthz", timeout=2.0
            )
            return response.status == 200
        except (OSError, asyncio.TimeoutError, http.HttpProtocolError):
            return False

    def _declare_dead(self, reason: str) -> None:
        if not self._dead.is_set():
            self._death_reason = reason
            self._dead.set()

    # -- one request -------------------------------------------------------
    async def _attempt(self, path: str) -> http.HttpResponse:
        """One attempt, optionally hedged: first settled response wins."""
        hedge_s = self.config.hedge_s
        primary = asyncio.create_task(self._post(path))
        if hedge_s is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=hedge_s)
        if done:
            return primary.result()
        self.stats.hedged += 1
        backup = asyncio.create_task(self._post(path))
        pending: set[asyncio.Task] = {primary, backup}
        last_exc: BaseException | None = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    exc = task.exception()
                    if exc is None:
                        if task is backup:
                            self.stats.hedge_wins += 1
                        return task.result()
                    last_exc = exc
            assert last_exc is not None
            raise last_exc
        finally:
            for task in pending:
                task.cancel()

    async def _fire(self, function: str, offset: float, start: float) -> None:
        """One scheduled arrival: sleep until due, then attempt with retries."""
        loop = asyncio.get_running_loop()
        due = start + offset / self.config.speed
        delay = due - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if self._dead.is_set():
            self.stats.abandoned += 1
            return
        self.stats.submitted += 1
        path = f"/function/{function}"
        backoff = self.config.backoff_s
        for attempt in range(self.config.retries + 1):
            if self._dead.is_set():
                self.stats.abandoned += 1
                return
            retryable = False
            try:
                response = await self._attempt(path)
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                retryable = True
            except (OSError, http.HttpProtocolError, asyncio.IncompleteReadError) as exc:
                self.stats.conn_errors += 1
                if not await self._probe():
                    self._declare_dead(f"{type(exc).__name__}: {exc}")
                    return
                retryable = True
            else:
                if response.status == 200:
                    self.stats.ok += 1
                    body = response.json() or {}
                    self.stats.latency_ms_sum += float(body.get("latency_ms", 0.0))
                    return
                self.stats.rejected += 1
                if response.status not in (500, 503, 504):
                    return  # 404 etc: retrying cannot help
                retryable = True
            if not retryable or attempt >= self.config.retries:
                return
            self.stats.retries += 1
            await asyncio.sleep(min(backoff, self.config.backoff_cap_s))
            backoff *= 2.0

    # -- the replay --------------------------------------------------------
    async def run(self) -> dict:
        """Replay every arrival, drain the server, return the report payload."""
        if self.config.speed <= 0:
            raise ReplayError(f"--speed must be > 0, got {self.config.speed}")
        schedule = arrival_schedule(self.scenario)
        total = sum(len(times) for times in schedule.values())
        if not await self._probe():
            raise ReplayError(
                f"no live server answering at "
                f"http://{self.config.host}:{self.config.port}/healthz — "
                "start one with: python -m repro serve SCENARIO.json"
            )
        start = asyncio.get_running_loop().time()
        tasks = [
            asyncio.create_task(self._fire(name, offset, start))
            for name, times in sorted(schedule.items())
            for offset in times
        ]
        try:
            await asyncio.gather(*tasks)
        finally:
            for task in tasks:
                task.cancel()
        if self._dead.is_set():
            raise ReplayError(
                f"server died mid-replay ({self._death_reason}); "
                f"{self.stats.ok}/{total} requests had completed"
            )
        try:
            response = await self._post("/drain", timeout=self.config.drain_timeout_s)
        except (OSError, asyncio.TimeoutError, http.HttpProtocolError) as exc:
            raise ReplayError(f"drain failed: {type(exc).__name__}: {exc}") from exc
        if response.status != 200:
            raise ReplayError(f"drain returned HTTP {response.status}")
        payload = response.json()
        if not isinstance(payload, dict) or payload.get("benchmark") != "scenario":
            raise ReplayError("drain did not return a ScenarioReport payload")
        payload["client"] = self.stats.to_dict()
        return payload


async def replay(scenario: Scenario, config: ReplayConfig | None = None,
                 quick: bool = False) -> dict:
    """Convenience wrapper: one :class:`Replayer` run."""
    return await Replayer(scenario, config, quick=quick).run()


def format_summary(payload: _t.Mapping) -> str:
    """Human-readable replay wrap-up (server window + client counters)."""
    totals = payload.get("totals", {})
    client = payload.get("client", {})
    lines = [
        f"Live replay of {payload.get('scenario', {}).get('name', '?')!r} "
        f"(mode={payload.get('mode', 'sim')}, quick={payload.get('quick')})",
        f"  server window: submitted {totals.get('submitted')}  "
        f"completed {totals.get('completed')}  p95 {totals.get('p95_ms', 0.0):.1f} ms  "
        f"violations {100 * totals.get('slo_violation_ratio', 0.0):.2f}%",
        f"  client: {client.get('ok', 0)}/{client.get('submitted', 0)} ok  "
        f"{client.get('timeouts', 0)} timeouts  {client.get('rejected', 0)} rejected  "
        f"{client.get('conn_errors', 0)} conn-errors  {client.get('retries', 0)} retries  "
        f"{client.get('hedged', 0)} hedged ({client.get('hedge_wins', 0)} wins)  "
        f"mean latency {client.get('latency_ms_mean', 0.0):.1f} ms",
    ]
    return "\n".join(lines)
