"""The live serving front: asyncio HTTP gateway over the unmodified control plane.

``python -m repro serve SCENARIO.json`` deploys the scenario's control
plane exactly as a simulation would (same autoscaler, scheduler, gateway,
memory tier — deployment and warm-up run in pure virtual time), then swaps
the engine's :class:`~repro.sim.clock.SimClock` for a
:class:`~repro.sim.clock.WallClock` and serves real HTTP traffic:

* ``POST /function/{name}`` — invoke: injects a gateway submission at the
  wall arrival instant and awaits its completion event, bounded by the
  per-request deadline (``504`` past it).
* ``GET /healthz`` — liveness + mode/draining flags.
* ``GET /stats`` — engine time, per-function submitted/pending counters,
  connection and in-flight gauges.
* ``GET /telemetry/stream`` — live NDJSON feed of the PR-8 telemetry hub
  (requires telemetry enabled; ``409`` otherwise).
* ``POST /drain`` — graceful drain: stop accepting invokes, wait for
  in-flight requests, stop the autoscaler, aggregate the **same
  ScenarioReport the DES path produces** (``mode: "live"``) and return it;
  the server then shuts down so ``repro serve`` exits 0.
* ``GET /report`` — the drained report (``409`` until drained).

Connections beyond ``max_connections`` are refused with ``503``.  The
measured window opens at serve start (``measurement.warmup_s`` is a
simulation-only knob and is ignored live; ``drain_s`` still pads the
window close so in-flight simulated work lands in the report).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import typing as _t

from repro.k8s.objects import set_transition_observer
from repro.scenario.report import ScenarioReport
from repro.scenario.runner import (
    ControlPlane,
    WindowCounters,
    aggregate_report,
    build_platform,
    placement_state,
    prepare_control_plane,
    transition_observer,
)
from repro.scenario.spec import Scenario
from repro.serve.driver import EngineDriver
from repro.serve.http import (
    HttpProtocolError,
    HttpRequest,
    json_response,
    read_request,
    response_bytes,
)
from repro.sim.clock import WallClock


class ServeError(RuntimeError):
    """Fatal serving-subsystem error (bind failure, double start…)."""


@dataclasses.dataclass(slots=True)
class ServeConfig:
    """Tunables of the live HTTP front."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: concurrent-connection cap; excess connections get an immediate 503.
    max_connections: int = 64
    #: per-request completion deadline (seconds); a 504 past it.
    deadline_s: float = 30.0
    #: how long a drain waits for in-flight invokes before forcing the cut.
    drain_timeout_s: float = 30.0
    #: driver idle heartbeat (see :class:`~repro.serve.driver.EngineDriver`).
    tick_s: float = 0.25


class LiveServer:
    """One scenario's control plane behind a wall-clock asyncio gateway."""

    def __init__(self, scenario: Scenario, config: ServeConfig | None = None,
                 quick: bool = False):
        if quick:
            scenario = scenario.quick()
        self.scenario = scenario
        self.config = config or ServeConfig()
        self.quick = quick
        self.report: ScenarioReport | None = None
        self._report_payload: dict | None = None
        self._plane: ControlPlane | None = None
        self._driver: EngineDriver | None = None
        self._server: asyncio.Server | None = None
        self._observing = False
        self._functions: frozenset[str] = frozenset(f.name for f in scenario.functions)
        self._t0 = 0.0
        self._samples: list[tuple[float, int, dict[str, float]]] = []
        self._sample_handle = None
        self._before = WindowCounters()
        self._connections = 0
        self._in_flight = 0
        self._draining = False
        self._idle = asyncio.Event()
        self._done = asyncio.Event()
        self._drain_lock = asyncio.Lock()
        self._taps: set[asyncio.Queue] = set()

    # -- lifecycle ---------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        if self._server is None or not self._server.sockets:
            raise ServeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Deploy (virtual time), anchor the wall clock, bind the socket."""
        if self._plane is not None:
            raise ServeError("server already started")
        platform = build_platform(self.scenario)
        engine = platform.engine
        self._observing = self.scenario.measurement.telemetry
        if self._observing:
            engine.hub.enabled = True
            engine.hub.tap = self._fanout
            set_transition_observer(transition_observer(engine))
        plane = prepare_control_plane(self.scenario, platform)
        self._plane = plane

        t_start = engine.now
        plane.anchor_oracles(t_start)
        platform.cluster.reset_metrics()
        self._t0 = t_start
        self._before = WindowCounters.capture(platform, plane.scheduler)

        dt = self.scenario.measurement.sample_dt

        def sample() -> None:
            gpus, alloc = placement_state(
                platform, plane.scheduler, self.scenario.cluster.sharing
            )
            self._samples.append((engine.now, gpus, alloc))
            if not self._draining:
                self._sample_handle = engine.schedule(dt, sample)

        self._sample_handle = engine.schedule(dt, sample)

        clock = WallClock()
        engine.use_clock(clock)
        clock.start(origin=t_start)
        self._driver = EngineDriver(engine, clock, tick_s=self.config.tick_s)
        self._driver.start()
        try:
            self._server = await asyncio.start_server(
                self._handle, host=self.config.host, port=self.config.port
            )
        except OSError as exc:
            await self._driver.stop()
            raise ServeError(
                f"cannot bind {self.config.host}:{self.config.port}: {exc} "
                "(is another server already listening on that port?)"
            ) from exc

    async def serve_until_drained(self) -> ScenarioReport:
        """Block until a ``POST /drain`` completed; returns the live report."""
        if self._server is None:
            raise ServeError("server not started")
        await self._done.wait()
        assert self.report is not None
        return self.report

    async def aclose(self) -> None:
        """Tear the front down (idempotent; finalizes the report if needed)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.report is None and self._plane is not None:
            await self._finalize()
        elif self._driver is not None and self._driver.running:
            await self._driver.stop()
        if self._observing and self._plane is not None:
            set_transition_observer(None)
            self._plane.platform.engine.hub.tap = None
        self._broadcast(None)

    # -- request handling ---------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.config.max_connections:
            writer.write(json_response(503, {"error": "connection limit reached"}))
            await self._close_writer(writer)
            return
        self._connections += 1
        shutdown_after = False
        try:
            try:
                request = await asyncio.wait_for(read_request(reader), timeout=30.0)
            except (HttpProtocolError, asyncio.TimeoutError, ConnectionError,
                    asyncio.IncompleteReadError) as exc:
                writer.write(json_response(400, {"error": f"bad request: {exc}"}))
                return
            if request is None:
                return
            if request.method == "GET" and request.path == "/telemetry/stream":
                await self._stream_telemetry(writer)
                return
            status, payload, shutdown_after = await self._route(request)
            writer.write(json_response(status, payload))
            await writer.drain()
        except asyncio.CancelledError:
            raise
        except ConnectionError:
            pass  # client went away mid-exchange
        except Exception as exc:  # a handler bug must not kill the server
            try:
                writer.write(json_response(500, {"error": f"internal error: {exc}"}))
            except ConnectionError:
                pass
        finally:
            self._connections -= 1
            await self._close_writer(writer)
            if shutdown_after:
                self._done.set()

    async def _route(self, request: HttpRequest) -> tuple[int, dict, bool]:
        """Dispatch one request → (status, JSON payload, shutdown-after)."""
        method, path = request.method, request.path.split("?", 1)[0]
        if method == "GET" and path == "/healthz":
            return 200, {
                "status": "ok",
                "scenario": self.scenario.name,
                "mode": "live",
                "draining": self._draining,
            }, False
        if method == "GET" and path == "/stats":
            return 200, self._stats(), False
        if method == "POST" and path.startswith("/function/"):
            return await self._invoke(path[len("/function/"):])
        if method == "POST" and path == "/drain":
            payload = await self._drain()
            return 200, payload, True
        if method == "GET" and path == "/report":
            if self._report_payload is None:
                return 409, {"error": "not drained yet — POST /drain first"}, False
            return 200, self._report_payload, False
        return 404, {"error": f"no route {method} {path}"}, False

    def _stats(self) -> dict:
        assert self._plane is not None and self._driver is not None
        platform = self._plane.platform
        engine = platform.engine
        self._driver.advance()
        functions = {}
        for name in sorted(self._functions):
            functions[name] = {
                "submitted": int(platform.gateway.submitted[name])
                - self._before.submitted.get(name, 0),
                "pending": platform.gateway.pending_count(name),
            }
        stats = {
            "clock": engine.clock.mode,
            "time_s": engine.now - self._t0,
            "horizon_s": self._plane.horizon,
            "draining": self._draining,
            "connections": self._connections,
            "in_flight": self._in_flight,
            "functions": functions,
        }
        # Live fragmentation gauges (and migration counts when the
        # defragmenter is running), computed from the placement state the
        # moment /stats is answered.
        scheduler = self._plane.scheduler
        if scheduler is not None:
            stats["fragmentation"] = {
                "cluster": scheduler.placement.cluster_fragmentation(),
                "nodes": scheduler.placement.fragmentation_by_node(),
            }
        migrator = platform.migrator
        if migrator is not None:
            stats["migrations"] = {
                "started": migrator.started,
                "completed": migrator.completed,
                "aborted": migrator.aborted,
                "in_flight": migrator.in_flight,
            }
        return stats

    async def _invoke(self, name: str) -> tuple[int, dict, bool]:
        if self._draining:
            return 503, {"error": "draining — no new invocations"}, False
        if name not in self._functions:
            return 404, {
                "error": f"unknown function {name!r}",
                "known": sorted(self._functions),
            }, False
        assert self._plane is not None and self._driver is not None
        engine = self._plane.platform.engine
        gateway = self._plane.platform.gateway
        future: asyncio.Future = asyncio.get_running_loop().create_future()

        def _submit():
            done = engine.event(f"http.{name}")

            def _resolve(event) -> None:
                if not future.done():
                    future.set_result(event.value)

            done.add_callback(_resolve)
            return gateway.submit(name, done_event=done)

        self._in_flight += 1
        try:
            submitted = self._driver.call(_submit)
            try:
                completed = await asyncio.wait_for(
                    future, timeout=self.config.deadline_s
                )
            except asyncio.TimeoutError:
                return 504, {
                    "error": "deadline exceeded",
                    "function": name,
                    "request_id": submitted.request_id,
                    "deadline_s": self.config.deadline_s,
                }, False
            return 200, {
                "function": name,
                "request_id": completed.request_id,
                "replica": completed.replica_id,
                "latency_ms": 1000.0 * completed.latency,
                "queue_wait_ms": 1000.0 * completed.queue_wait,
            }, False
        finally:
            self._in_flight -= 1
            if self._draining and self._in_flight == 0:
                self._idle.set()

    # -- drain / report ------------------------------------------------------
    async def _drain(self) -> dict:
        async with self._drain_lock:
            if self._report_payload is not None:
                return self._report_payload
            self._draining = True
            if self._in_flight == 0:
                self._idle.set()
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.drain_timeout_s
                )
            except asyncio.TimeoutError:
                pass  # forced cut: stragglers fall outside the window
            await self._finalize()
            assert self._report_payload is not None
            return self._report_payload

    async def _finalize(self) -> None:
        """Close the measured window and aggregate the live ScenarioReport."""
        assert self._plane is not None and self._driver is not None
        self._draining = True
        plane = self._plane
        engine = plane.platform.engine

        def _cut() -> None:
            if self._sample_handle is not None:
                self._sample_handle.cancel()
            if plane.scheduler is not None:
                plane.scheduler.stop()

        self._driver.call(_cut)
        # Pad the close like the DES path does, so simulated work already on
        # the devices lands inside the window instead of being truncated.
        drain_s = self.scenario.measurement.drain_s
        if drain_s > 0:
            engine.run(until=engine.now + drain_s)
        await self._driver.stop()
        end = engine.now
        self.report = aggregate_report(
            plane,
            quick=self.quick,
            t0=self._t0,
            end=end,
            samples=self._samples,
            before=self._before,
            mode="live",
        )
        self._report_payload = self.report.to_dict()
        self._broadcast(None)

    # -- telemetry streaming -------------------------------------------------
    def _fanout(self, event) -> None:
        if not self._taps:
            return
        payload = event.to_dict()
        for queue in list(self._taps):
            try:
                queue.put_nowait(payload)
            except asyncio.QueueFull:
                pass  # slow consumer: drop rather than stall the engine

    def _broadcast(self, item) -> None:
        for queue in list(self._taps):
            try:
                queue.put_nowait(item)
            except asyncio.QueueFull:
                pass

    async def _stream_telemetry(self, writer: asyncio.StreamWriter) -> None:
        if not self._observing:
            writer.write(json_response(409, {
                "error": "telemetry disabled — serve with --telemetry "
                "(or measurement.telemetry: true)"
            }))
            return
        queue: asyncio.Queue = asyncio.Queue(maxsize=4096)
        self._taps.add(queue)
        try:
            writer.write(response_bytes(200, content_type="application/x-ndjson",
                                        stream=True))
            await writer.drain()
            while True:
                item = await queue.get()
                if item is None:  # drained / shutting down
                    break
                writer.write((json.dumps(item, sort_keys=True) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away
        finally:
            self._taps.discard(queue)

    @staticmethod
    async def _close_writer(writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def serve_scenario(
    scenario: Scenario,
    config: ServeConfig | None = None,
    quick: bool = False,
    on_ready: _t.Callable[["LiveServer"], None] | None = None,
) -> ScenarioReport:
    """Run the live server until drained; returns the live ScenarioReport."""
    server = LiveServer(scenario, config, quick=quick)
    await server.start()
    if on_ready is not None:
        on_ready(server)
    try:
        return await server.serve_until_drained()
    finally:
        await server.aclose()
