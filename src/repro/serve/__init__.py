"""Live serving subsystem: the identical control plane in wall-clock time.

``python -m repro serve SCENARIO.json`` puts the *unmodified* scheduler /
autoscaler / gateway / memory-tier stack — every timer still an engine
callback — behind a real asyncio HTTP front, paced against a
:class:`~repro.sim.clock.WallClock` by :class:`~repro.serve.driver.EngineDriver`;
``python -m repro replay`` fires the byte-identical arrival schedule the
DES's open-loop generator would draw, with client timeouts, capped
exponential-backoff retries, and hedged requests.  Both ends emit/consume
the same :class:`~repro.scenario.report.ScenarioReport` schema, so live
runs diff directly against simulations (``python -m repro explain --diff``).
"""

from repro.serve.driver import EngineDriver
from repro.serve.replayer import (
    Replayer,
    ReplayConfig,
    ReplayError,
    ReplayStats,
    arrival_schedule,
    format_summary,
    replay,
)
from repro.serve.server import LiveServer, ServeConfig, ServeError, serve_scenario

__all__ = [
    "EngineDriver",
    "LiveServer",
    "ReplayConfig",
    "ReplayError",
    "ReplayStats",
    "Replayer",
    "ServeConfig",
    "ServeError",
    "arrival_schedule",
    "format_summary",
    "replay",
    "serve_scenario",
]
