"""Minimal HTTP/1.1 framing over asyncio streams (server + client side).

The container bakes in only the standard library and numpy, so the live
serving subsystem hand-rolls the small slice of HTTP it needs instead of
depending on aiohttp/requests: one request per connection (``Connection:
close``), ``Content-Length`` bodies, and an unframed streaming response for
the NDJSON telemetry endpoint.  Both :mod:`repro.serve.server` and
:mod:`repro.serve.replayer` speak through these helpers so the two sides
can never disagree about framing.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import typing as _t

#: Hard caps so a broken peer cannot balloon memory.
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpProtocolError(ValueError):
    """Malformed request/response framing on the wire."""


@dataclasses.dataclass(slots=True)
class HttpRequest:
    """One parsed inbound request."""

    method: str
    path: str
    headers: dict[str, str]
    body: bytes

    def json(self) -> _t.Any:
        if not self.body:
            return None
        return json.loads(self.body.decode("utf-8"))


@dataclasses.dataclass(slots=True)
class HttpResponse:
    """One parsed client-side response."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> _t.Any:
        if not self.body:
            return None
        return json.loads(self.body.decode("utf-8"))


async def _read_head(reader: asyncio.StreamReader) -> list[str] | None:
    """Read request/status line + headers; ``None`` on clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF between requests
        raise HttpProtocolError("connection closed mid-headers") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpProtocolError("header block too large") from exc
    if len(head) > MAX_HEADER_BYTES:
        raise HttpProtocolError(f"header block exceeds {MAX_HEADER_BYTES} bytes")
    return head.decode("latin-1").split("\r\n")


def _parse_headers(lines: _t.Iterable[str]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return headers


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one inbound request; ``None`` when the peer closed cleanly."""
    lines = await _read_head(reader)
    if lines is None:
        return None
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpProtocolError(f"malformed request line {lines[0]!r}")
    method, path = parts[0].upper(), parts[1]
    headers = _parse_headers(lines[1:])
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpProtocolError("bad Content-Length") from exc
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpProtocolError(f"Content-Length {length} out of range")
        body = await reader.readexactly(length)
    return HttpRequest(method=method, path=path, headers=headers, body=body)


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    *,
    stream: bool = False,
) -> bytes:
    """Serialize a response head (+ body unless ``stream``).

    With ``stream=True`` no ``Content-Length`` is sent — the caller writes
    the body incrementally and closes the connection to delimit it (the
    NDJSON telemetry feed).
    """
    reason = _REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if not stream:
        head.append(f"Content-Length: {len(body)}")
    raw = ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
    return raw if stream else raw + body


def json_response(status: int, payload: _t.Any) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body)


async def request(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes | None = None,
    timeout: float = 10.0,
) -> HttpResponse:
    """One client request over a fresh connection (``Connection: close``).

    Raises ``OSError``/``ConnectionError`` when the server is unreachable or
    dies mid-exchange, ``asyncio.TimeoutError`` past ``timeout``, and
    :class:`HttpProtocolError` on malformed framing.
    """

    async def _exchange() -> HttpResponse:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            payload = body or b""
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + payload)
            await writer.drain()
            lines = await _read_head(reader)
            if lines is None:
                raise ConnectionResetError("server closed before responding")
            parts = lines[0].split(" ", 2)
            if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
                raise HttpProtocolError(f"malformed status line {lines[0]!r}")
            status = int(parts[1])
            headers = _parse_headers(lines[1:])
            if "content-length" in headers:
                data = await reader.readexactly(int(headers["content-length"]))
            else:
                data = await reader.read(MAX_BODY_BYTES)
            return HttpResponse(status=status, headers=headers, body=data)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    return await asyncio.wait_for(_exchange(), timeout=timeout)
