"""The wall-clock driver: paces the DES engine against real time in asyncio.

The whole point of the live subsystem is that the *identical* control plane
(gateway, scheduler, autoscaler, memory tier, fluid device models) runs
unmodified — every one of its timers is still an engine callback at an
absolute engine-timeline instant.  The driver is the only new moving part:
a single asyncio task that repeatedly

1. advances the engine to the wall clock's current reading
   (``engine.run(until=clock.now())`` — exactly the API every simulation
   uses, so due callbacks fire in the same deterministic ``(time, seq)``
   order they would in a sim), then
2. sleeps until the next scheduled event comes due (or a wakeup: an HTTP
   handler injected a request, or an engine callback scheduled something
   earlier than the current sleep deadline — caught via
   ``Engine.on_schedule``).

Everything runs on one event loop thread, so no locks: HTTP handlers mutate
engine state only through :meth:`EngineDriver.call`, which advances the
engine to "now" first so arrivals are stamped at the wall moment they came
in.
"""

from __future__ import annotations

import asyncio
import math
import typing as _t

from repro.sim.clock import WallClock
from repro.sim.engine import Engine


class EngineDriver:
    """Runs an :class:`Engine` in wall time on the current asyncio loop.

    Parameters
    ----------
    engine, clock:
        The engine to pace and the (started) :class:`WallClock` anchoring
        its timeline to real time.
    tick_s:
        Idle heartbeat: the maximum sleep between engine advances even when
        no event is due (bounds drift after a missed wakeup).
    """

    def __init__(self, engine: Engine, clock: WallClock, tick_s: float = 0.25):
        if tick_s <= 0:
            raise ValueError(f"tick_s must be > 0, got {tick_s}")
        self._engine = engine
        self._clock = clock
        self._tick_s = tick_s
        self._wake = asyncio.Event()
        self._sleeping = False
        self._stopping = False
        self._task: asyncio.Task | None = None
        engine.on_schedule = self._on_schedule

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        if self._task is not None:
            raise RuntimeError("driver already started")
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="engine-driver"
        )

    async def stop(self) -> None:
        """Advance to "now" one last time, then stop the pacing task."""
        self._stopping = True
        self._wake.set()
        if self._task is not None:
            await self._task
            self._task = None
        self.advance()
        self._engine.on_schedule = None

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    # -- engine access -----------------------------------------------------
    def advance(self) -> float:
        """Bring the engine timeline up to the wall clock's reading."""
        target = self._clock.now()
        if target > self._engine.now:
            self._engine.run(until=target)
        return self._engine.now

    def call(self, fn: _t.Callable, *args) -> _t.Any:
        """Run ``fn`` on the engine timeline at the current wall instant.

        The engine is advanced first so anything ``fn`` records (a gateway
        arrival, a cancel) is stamped "now", and the pacing task is woken
        afterwards so timers ``fn`` scheduled are re-evaluated immediately.
        """
        self.advance()
        try:
            return fn(*args)
        finally:
            self._wake.set()

    # -- internals ---------------------------------------------------------
    def _on_schedule(self, time: float) -> None:
        # Only relevant while the pacing task is parked: a callback running
        # *inside* engine.run() already has the loop's attention.
        if self._sleeping:
            self._wake.set()

    async def _run(self) -> None:
        while not self._stopping:
            self._wake.clear()
            self.advance()
            next_event = self._engine.peek()
            if next_event is math.inf:
                delay = self._tick_s
            else:
                delay = min(self._tick_s, max(0.0, next_event - self._clock.now()))
            if delay <= 0.0:
                # An event is already due — yield once so handler coroutines
                # starved behind a busy timeline still get scheduled.
                await asyncio.sleep(0)
                continue
            self._sleeping = True
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass
            finally:
                self._sleeping = False
